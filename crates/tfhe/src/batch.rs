//! Batched gate evaluation across OS threads.
//!
//! The paper's throughput metric (Figure 10) assumes many independent
//! gates in flight — MATCHA runs 8 bootstrapping pipelines, the GPU
//! batches ciphertexts, and the CPU baseline uses its 8 cores. This module
//! is the software counterpart, in two forms:
//!
//! * [`run_gate_batch`] shards one batch over scoped workers, each holding
//!   a private [`BootstrapScratch`](crate::scratch::BootstrapScratch) so
//!   every gate after its first runs allocation-free;
//! * [`GateBatchPool`] keeps those workers (and their warmed scratches)
//!   **alive across batches** — the software analogue of MATCHA's eight
//!   always-resident bootstrapping pipelines, and the fix for the seed
//!   implementation's spawn-per-call sharding.

use crate::gates::{Gate, ServerKey};
use crate::lwe::LweCiphertext;
use matcha_fft::FftEngine;
use matcha_math::Torus32;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The result of a batched run.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Gate outputs, in input order.
    pub outputs: Vec<LweCiphertext>,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_s: f64,
    /// Achieved throughput in gates per second.
    pub gates_per_second: f64,
    /// Worker threads used.
    pub threads: usize,
}

fn finish_batch(outputs: Vec<LweCiphertext>, t0: Instant, threads: usize) -> BatchResult {
    let elapsed_s = t0.elapsed().as_secs_f64();
    let gates_per_second = if outputs.is_empty() {
        0.0
    } else if elapsed_s > 0.0 {
        outputs.len() as f64 / elapsed_s
    } else {
        f64::INFINITY
    };
    BatchResult {
        outputs,
        elapsed_s,
        gates_per_second,
        threads,
    }
}

/// Evaluates the same two-input gate over a batch of independent operand
/// pairs, sharded across `threads` scoped workers. Each worker owns one
/// bootstrap scratch for the whole batch, so per-gate heap traffic is
/// limited to the output ciphertexts.
///
/// For repeated batches against the same key, prefer [`GateBatchPool`],
/// which keeps workers and warmed scratches alive between calls.
///
/// # Panics
///
/// Panics if `threads` is 0.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{batch, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = ServerKey::new(&client, F64Fft::new(1024), &mut rng);
/// let pairs: Vec<_> = (0..16)
///     .map(|i| (client.encrypt(i % 2 == 0), client.encrypt(i % 3 == 0)))
///     .collect();
/// let result = batch::run_gate_batch(&server, Gate::Nand, &pairs, 8);
/// println!("{:.0} gates/s", result.gates_per_second);
/// ```
pub fn run_gate_batch<E>(
    server: &ServerKey<E>,
    gate: Gate,
    pairs: &[(LweCiphertext, LweCiphertext)],
    threads: usize,
) -> BatchResult
where
    E: FftEngine + Sync,
    E::Spectrum: Sync,
{
    assert!(threads > 0, "need at least one worker");
    let t0 = Instant::now();
    if pairs.is_empty() {
        // No work: `pairs.chunks(0)` below would panic, and spawning
        // workers for nothing is pointless. Report an empty batch.
        return finish_batch(Vec::new(), t0, 0);
    }
    let threads = threads.min(pairs.len());
    let chunk = pairs.len().div_ceil(threads);
    let mut outputs: Vec<Option<LweCiphertext>> = vec![None; pairs.len()];

    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<LweCiphertext>] = &mut outputs;
        for work in pairs.chunks(chunk) {
            let (slot, rest) = remaining.split_at_mut(work.len());
            remaining = rest;
            scope.spawn(move || {
                // One scratch and one output buffer per worker: the first
                // gate warms them, the rest of the chunk reuses them.
                let mut scratch = server.make_scratch();
                let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dimension);
                for ((a, b), out_slot) in work.iter().zip(slot.iter_mut()) {
                    server.apply_into(gate, a, b, &mut out, &mut scratch);
                    *out_slot = Some(out.clone());
                }
            });
        }
    });

    let outputs: Vec<LweCiphertext> = outputs
        .into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect();
    finish_batch(outputs, t0, threads)
}

/// One unit of pool work: a gate over two operands, with a reply channel.
struct Job {
    gate: Gate,
    a: LweCiphertext,
    b: LweCiphertext,
    index: usize,
    reply: mpsc::Sender<(usize, LweCiphertext)>,
}

/// A persistent gate-evaluation worker pool sharing one [`ServerKey`].
///
/// Workers are spawned once and hold their warmed
/// [`BootstrapScratch`](crate::scratch::BootstrapScratch) across an
/// arbitrary number of [`GateBatchPool::run`] calls; jobs are pulled from a
/// shared queue, so uneven gate latencies balance automatically. Dropping
/// the pool shuts the workers down.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{batch::GateBatchPool, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = Arc::new(ServerKey::new(&client, F64Fft::new(1024), &mut rng));
/// let pool = GateBatchPool::new(server, 8);
/// let pairs: Vec<_> = (0..16)
///     .map(|i| (client.encrypt(i % 2 == 0), client.encrypt(i % 3 == 0)))
///     .collect();
/// // Both batches reuse the same warmed workers.
/// let nand = pool.run(Gate::Nand, &pairs);
/// let xor = pool.run(Gate::Xor, &pairs);
/// println!("{:.0} / {:.0} gates/s", nand.gates_per_second, xor.gates_per_second);
/// ```
pub struct GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    server: Arc<ServerKey<E>>,
}

impl<E> GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    /// Spawns `threads` persistent workers over a shared server key.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn new(server: Arc<ServerKey<E>>, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut scratch = server.make_scratch();
                    let mut out =
                        LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dimension);
                    loop {
                        // Hold the lock only to pull the next job.
                        let job = { rx.lock().expect("queue lock").recv() };
                        let Ok(job) = job else { break };
                        server.apply_into(job.gate, &job.a, &job.b, &mut out, &mut scratch);
                        // The receiver may have given up (run() panicked);
                        // dropping the result is then the right behavior.
                        let _ = job.reply.send((job.index, out.clone()));
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            threads,
            server,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared server key the workers evaluate under.
    pub fn server(&self) -> &ServerKey<E> {
        &self.server
    }

    /// Evaluates `gate` over all pairs on the persistent workers, returning
    /// outputs in input order.
    pub fn run(&self, gate: Gate, pairs: &[(LweCiphertext, LweCiphertext)]) -> BatchResult {
        let t0 = Instant::now();
        if pairs.is_empty() {
            // Same contract as `run_gate_batch`: an empty batch is a valid
            // request that produces an empty result, not a panic.
            return finish_batch(Vec::new(), t0, 0);
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let tx = self.tx.as_ref().expect("pool is live");
        for (index, (a, b)) in pairs.iter().enumerate() {
            tx.send(Job {
                gate,
                a: a.clone(),
                b: b.clone(),
                index,
                reply: reply_tx.clone(),
            })
            .expect("workers alive");
        }
        drop(reply_tx);
        let mut outputs: Vec<Option<LweCiphertext>> = vec![None; pairs.len()];
        for (index, c) in reply_rx {
            outputs[index] = Some(c);
        }
        let outputs: Vec<LweCiphertext> = outputs
            .into_iter()
            .map(|o| o.expect("worker answered every job"))
            .collect();
        finish_batch(outputs, t0, self.threads)
    }
}

impl<E> Drop for GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::{ApproxIntFft, F64Fft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type EncryptedPairs = Vec<(crate::LweCiphertext, crate::LweCiphertext)>;

    fn inputs(
        client: &ClientKey,
        rng: &mut StdRng,
        count: usize,
    ) -> (Vec<(bool, bool)>, EncryptedPairs) {
        let plain: Vec<(bool, bool)> = (0..count).map(|i| (i % 2 == 0, i % 3 == 0)).collect();
        let enc = plain
            .iter()
            .map(|&(a, b)| (client.encrypt_with(a, rng), client.encrypt_with(b, rng)))
            .collect();
        (plain, enc)
    }

    #[test]
    fn batch_outputs_match_sequential() {
        let mut rng = StdRng::seed_from_u64(81);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (plain, enc) = inputs(&client, &mut rng, 10);
        let result = run_gate_batch(&server, Gate::Nand, &enc, 4);
        assert_eq!(result.outputs.len(), 10);
        for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
            assert_eq!(client.decrypt(out), !(a & b));
        }
        assert!(result.gates_per_second > 0.0);
    }

    #[test]
    fn single_thread_equals_multi_thread_results() {
        let mut rng = StdRng::seed_from_u64(82);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::with_unrolling(&client, ApproxIntFft::new(256, 40), 2, &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 6);
        let seq = run_gate_batch(&server, Gate::Xor, &enc, 1);
        let par = run_gate_batch(&server, Gate::Xor, &enc, 3);
        for (s, p) in seq.outputs.iter().zip(par.outputs.iter()) {
            assert_eq!(client.decrypt(s), client.decrypt(p));
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let mut rng = StdRng::seed_from_u64(83);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 2);
        let result = run_gate_batch(&server, Gate::And, &enc, 16);
        assert_eq!(result.outputs.len(), 2);
        assert!(result.threads <= 2);
    }

    #[test]
    fn empty_batch_returns_empty_result() {
        let mut rng = StdRng::seed_from_u64(88);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let result = run_gate_batch(&server, Gate::Nand, &[], 4);
        assert!(result.outputs.is_empty());
        assert_eq!(result.threads, 0);
        assert_eq!(result.gates_per_second, 0.0);
    }

    #[test]
    fn pool_handles_empty_batch() {
        let mut rng = StdRng::seed_from_u64(89);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let empty = pool.run(Gate::And, &[]);
        assert!(empty.outputs.is_empty());
        assert_eq!(empty.gates_per_second, 0.0);
        // The pool is still usable for real work afterwards.
        let (plain, enc) = inputs(&client, &mut rng, 2);
        let result = pool.run(Gate::And, &enc);
        for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
            assert_eq!(client.decrypt(out), a & b);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let mut rng = StdRng::seed_from_u64(84);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let _ = run_gate_batch(&server, Gate::And, &[], 0);
    }

    #[test]
    fn pool_matches_plaintext_and_survives_reuse() {
        let mut rng = StdRng::seed_from_u64(85);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (plain, enc) = inputs(&client, &mut rng, 8);
        let pool = GateBatchPool::new(Arc::clone(&server), 3);
        // Two batches over the same persistent workers.
        let nand = pool.run(Gate::Nand, &enc);
        let or = pool.run(Gate::Or, &enc);
        for ((a, b), (n, o)) in plain.iter().zip(nand.outputs.iter().zip(or.outputs.iter())) {
            assert_eq!(client.decrypt(n), !(a & b), "nand({a},{b})");
            assert_eq!(client.decrypt(o), a | b, "or({a},{b})");
        }
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn pool_matches_spawn_per_batch_outputs() {
        let mut rng = StdRng::seed_from_u64(86);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::with_unrolling(
            &client,
            F64Fft::new(256),
            2,
            &mut rng,
        ));
        let (_, enc) = inputs(&client, &mut rng, 5);
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let pooled = pool.run(Gate::Xor, &enc);
        let scoped = run_gate_batch(server.as_ref(), Gate::Xor, &enc, 2);
        // Bootstrapping is deterministic given the same keys, so the two
        // paths must agree exactly.
        assert_eq!(pooled.outputs, scoped.outputs);
    }

    #[test]
    fn pool_shuts_down_cleanly() {
        let mut rng = StdRng::seed_from_u64(87);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (_, enc) = inputs(&client, &mut rng, 2);
        {
            let pool = GateBatchPool::new(Arc::clone(&server), 2);
            let _ = pool.run(Gate::And, &enc);
        } // drop joins workers; reaching here without hanging is the test
    }
}
