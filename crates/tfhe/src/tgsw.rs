//! TGSW ciphertexts and the external product `⊡ : TGSW × TRLWE → TRLWE`.
//!
//! A TGSW sample is the matrix extension of TLWE (paper §2): `2ℓ` TRLWE
//! rows, where row `j < ℓ` adds the gadget `μ·h_j` to the mask and row
//! `ℓ+j` adds it to the body. The external product gadget-decomposes the
//! TRLWE operand and takes the inner product with the rows — `2ℓ`
//! coefficient→Lagrange transforms, `2·2ℓ` pointwise multiply-accumulates
//! and `2` Lagrange→coefficient transforms per product, which is exactly
//! the kernel mix MATCHA's EP cores implement (1 FFT core : 4 IFFT cores).

use crate::params::ParameterSet;
use crate::profile::{self, Phase};
use crate::scratch::EpScratch;
use crate::secret::RingSecretKey;
use crate::tlwe::{TrlweCiphertext, TrlweSpectrum};
use matcha_fft::FftEngine;
use matcha_math::{GadgetDecomposer, IntPolynomial, TorusPolynomial, TorusSampler};
use rand::Rng;

/// A TGSW ciphertext in the coefficient domain.
#[derive(Clone, Debug)]
pub struct TgswCiphertext {
    rows: Vec<TrlweCiphertext>,
    levels: usize,
}

impl TgswCiphertext {
    /// Encrypts an integer polynomial message.
    ///
    /// Blind rotation only ever encrypts `{0, 1}` messages (secret key bits
    /// and their products), but the type supports any small integers.
    pub fn encrypt<E: FftEngine, R: Rng>(
        message: &IntPolynomial,
        key: &RingSecretKey,
        params: &ParameterSet,
        engine: &E,
        sampler: &mut TorusSampler<R>,
    ) -> Self {
        let n = key.ring_degree();
        debug_assert_eq!(message.len(), n);
        let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
        let levels = params.decomp_levels;
        let zero = TorusPolynomial::zero(n);
        let mut rows = Vec::with_capacity(2 * levels);
        for j in 0..2 * levels {
            let mut row =
                TrlweCiphertext::encrypt(&zero, key, params.ring_noise_stdev, engine, sampler);
            let h = decomp.gadget(j % levels);
            let gadget_poly =
                TorusPolynomial::from_coeffs(message.coeffs().iter().map(|&c| h * c).collect());
            if j < levels {
                let mut a = row.mask().clone();
                a += &gadget_poly;
                row = TrlweCiphertext::from_parts(a, row.body().clone());
            } else {
                let mut b = row.body().clone();
                b += &gadget_poly;
                row = TrlweCiphertext::from_parts(row.mask().clone(), b);
            }
            rows.push(row);
        }
        Self { rows, levels }
    }

    /// Encrypts a constant integer (`0` or `1` for bootstrapping keys).
    pub fn encrypt_constant<E: FftEngine, R: Rng>(
        message: i32,
        key: &RingSecretKey,
        params: &ParameterSet,
        engine: &E,
        sampler: &mut TorusSampler<R>,
    ) -> Self {
        let mut m = IntPolynomial::zero(key.ring_degree());
        m.coeffs_mut()[0] = message;
        Self::encrypt(&m, key, params, engine, sampler)
    }

    /// The noiseless TGSW of the constant `1`: the gadget matrix `H` itself
    /// (`h` in Algorithm 1 line 6).
    pub fn trivial_one(params: &ParameterSet) -> Self {
        let n = params.ring_degree;
        let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
        let levels = params.decomp_levels;
        let mut rows = Vec::with_capacity(2 * levels);
        for j in 0..2 * levels {
            let mut gadget_poly = TorusPolynomial::zero(n);
            gadget_poly.coeffs_mut()[0] = decomp.gadget(j % levels);
            let row = if j < levels {
                TrlweCiphertext::from_parts(gadget_poly, TorusPolynomial::zero(n))
            } else {
                TrlweCiphertext::from_parts(TorusPolynomial::zero(n), gadget_poly)
            };
            rows.push(row);
        }
        Self { rows, levels }
    }

    /// Decomposition length `ℓ`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The TRLWE rows (mask rows first, then body rows).
    pub fn rows(&self) -> &[TrlweCiphertext] {
        &self.rows
    }

    /// Transforms every row to the Lagrange domain.
    pub fn to_spectrum<E: FftEngine>(&self, engine: &E) -> TgswSpectrum<E> {
        TgswSpectrum {
            rows: self.rows.iter().map(|r| r.to_spectrum(engine)).collect(),
            levels: self.levels,
        }
    }
}

/// A TGSW ciphertext with all rows pre-transformed to the Lagrange domain —
/// the form bootstrapping keys are stored in.
#[derive(Debug)]
pub struct TgswSpectrum<E: FftEngine> {
    rows: Vec<TrlweSpectrum<E>>,
    levels: usize,
}

// Manual impl: rows are always `Clone`, the engine need not be.
impl<E: FftEngine> Clone for TgswSpectrum<E> {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows.clone(),
            levels: self.levels,
        }
    }
}

impl<E: FftEngine> TgswSpectrum<E> {
    /// Builds from pre-transformed rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != 2 * levels`.
    pub fn from_rows(rows: Vec<TrlweSpectrum<E>>, levels: usize) -> Self {
        assert_eq!(rows.len(), 2 * levels, "a TGSW sample has 2ℓ rows");
        Self { rows, levels }
    }

    /// Decomposition length `ℓ`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The pre-transformed rows.
    pub fn rows(&self) -> &[TrlweSpectrum<E>] {
        &self.rows
    }

    /// Mutable access to the rows (bundle construction into scratch).
    pub(crate) fn rows_mut(&mut self) -> &mut [TrlweSpectrum<E>] {
        &mut self.rows
    }

    /// The external product `self ⊡ c` (paper §2).
    ///
    /// If `self` encrypts `μ` and `c` encrypts `m`, the result encrypts
    /// `μ·m` with additive noise `O(ℓ·N·(Bg/2)·σ_TGSW) + ‖μ‖·ε_decomp`.
    pub fn external_product(
        &self,
        engine: &E,
        c: &TrlweCiphertext,
        decomp: &GadgetDecomposer,
    ) -> TrlweCiphertext {
        debug_assert_eq!(decomp.levels(), self.levels);
        let digits_a = profile::timed(Phase::Other, || decomp.decompose_poly(c.mask()));
        let digits_b = profile::timed(Phase::Other, || decomp.decompose_poly(c.body()));
        let mut acc_a = engine.zero_spectrum();
        let mut acc_b = engine.zero_spectrum();
        for (j, digit) in digits_a.iter().chain(digits_b.iter()).enumerate() {
            let fd = profile::timed(Phase::Ifft, || engine.forward_int(digit));
            let row = &self.rows[j];
            profile::timed(Phase::Other, || {
                engine.mul_accumulate(&mut acc_a, &fd, &row.a);
                engine.mul_accumulate(&mut acc_b, &fd, &row.b);
            });
        }
        let a = profile::timed(Phase::Fft, || engine.backward_torus(&acc_a));
        let b = profile::timed(Phase::Fft, || engine.backward_torus(&acc_b));
        TrlweCiphertext::from_parts(a, b)
    }

    /// The external product `c ← self ⊡ c`, evaluated entirely through the
    /// caller's scratch with the fused decompose→twist forward transforms:
    /// each digit level is extracted coefficient-by-coefficient inside
    /// [`FftEngine::forward_decomposed_into`]'s twist fold, so digit
    /// polynomials are never written to memory, and spectra and FFT buffers
    /// are reused, so a warmed call performs zero heap allocations.
    /// Bit-identical to [`TgswSpectrum::external_product`].
    ///
    /// Being generic over [`FftEngine`], this loop picks up the engines'
    /// split-complex AVX2+FMA butterfly and `mul_accumulate_pair` kernels
    /// (PR 3) with no code here changing — the transform and the pointwise
    /// accumulate, ~95% of this kernel's cost, both vectorize.
    ///
    /// # Panics
    ///
    /// Panics if `decomp.levels()` differs from this sample's `ℓ` (the old
    /// materializing path enforced this through its digit buffers; the
    /// fused path would otherwise extract garbage digit levels silently).
    pub fn external_product_assign(
        &self,
        engine: &E,
        c: &mut TrlweCiphertext,
        decomp: &GadgetDecomposer,
        scratch: &mut EpScratch<E>,
    ) {
        assert_eq!(
            decomp.levels(),
            self.levels,
            "decomposer levels must match the TGSW sample's ℓ"
        );
        let levels = self.levels;
        let EpScratch {
            engine: es,
            fd,
            acc_a,
            acc_b,
        } = scratch;
        engine.clear_spectrum(acc_a);
        engine.clear_spectrum(acc_b);
        // Mask rows first, then body rows — the same accumulation order as
        // the materializing path, so rounding histories agree exactly.
        for (half, poly) in [c.mask(), c.body()].into_iter().enumerate() {
            for level in 0..levels {
                profile::timed(Phase::Ifft, || {
                    engine.forward_decomposed_into(poly, decomp, level, fd, es)
                });
                let row = &self.rows[half * levels + level];
                profile::timed(Phase::Other, || {
                    engine.mul_accumulate_pair(acc_a, acc_b, fd, &row.a, &row.b);
                });
            }
        }
        let (mask, body) = c.parts_mut();
        profile::timed(Phase::Fft, || engine.backward_torus_into(acc_a, mask, es));
        profile::timed(Phase::Fft, || engine.backward_torus_into(acc_b, body, es));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_fft::{ApproxIntFft, F64Fft};
    use matcha_math::Torus32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> ParameterSet {
        ParameterSet {
            ring_degree: 64,
            ..ParameterSet::TEST_FAST
        }
    }

    fn setup() -> (RingSecretKey, F64Fft, TorusSampler<StdRng>, ParameterSet) {
        let p = params();
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(17));
        let key = RingSecretKey::generate(p.ring_degree, &mut sampler);
        (key, F64Fft::new(p.ring_degree), sampler, p)
    }

    fn message_poly(n: usize) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n)
                .map(|i| Torus32::from_dyadic((i % 4) as i64, 3))
                .collect(),
        )
    }

    #[test]
    fn external_product_by_one_preserves_message() {
        let (key, engine, mut sampler, p) = setup();
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let tgsw = TgswCiphertext::encrypt_constant(1, &key, &p, &engine, &mut sampler)
            .to_spectrum(&engine);
        let mu = message_poly(p.ring_degree);
        let c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, &engine, &mut sampler);
        let out = tgsw.external_product(&engine, &c, &decomp);
        assert!(out.phase(&key, &engine).max_distance(&mu) < 1e-3);
    }

    #[test]
    fn external_product_by_zero_kills_message() {
        let (key, engine, mut sampler, p) = setup();
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let tgsw = TgswCiphertext::encrypt_constant(0, &key, &p, &engine, &mut sampler)
            .to_spectrum(&engine);
        let mu = message_poly(p.ring_degree);
        let c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, &engine, &mut sampler);
        let out = tgsw.external_product(&engine, &c, &decomp);
        let zero = TorusPolynomial::zero(p.ring_degree);
        assert!(out.phase(&key, &engine).max_distance(&zero) < 1e-3);
    }

    #[test]
    fn trivial_one_acts_as_identity() {
        let (key, engine, mut sampler, p) = setup();
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let h = TgswCiphertext::trivial_one(&p).to_spectrum(&engine);
        let mu = message_poly(p.ring_degree);
        let c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, &engine, &mut sampler);
        let out = h.external_product(&engine, &c, &decomp);
        assert!(out.phase(&key, &engine).max_distance(&mu) < 1e-3);
    }

    #[test]
    fn external_product_by_monomial_message_rotates() {
        let (key, engine, mut sampler, p) = setup();
        let n = p.ring_degree;
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let mut monomial = IntPolynomial::zero(n);
        monomial.coeffs_mut()[3] = 1; // message X^3
        let tgsw = TgswCiphertext::encrypt(&monomial, &key, &p, &engine, &mut sampler)
            .to_spectrum(&engine);
        let mu = message_poly(n);
        let c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, &engine, &mut sampler);
        let out = tgsw.external_product(&engine, &c, &decomp);
        let expected = mu.mul_by_monomial(3);
        assert!(out.phase(&key, &engine).max_distance(&expected) < 1e-3);
    }

    #[test]
    fn works_with_integer_engine() {
        let p = params();
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(23));
        let key = RingSecretKey::generate(p.ring_degree, &mut sampler);
        let engine = ApproxIntFft::new(p.ring_degree, 45);
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let tgsw = TgswCiphertext::encrypt_constant(1, &key, &p, &engine, &mut sampler)
            .to_spectrum(&engine);
        let mu = message_poly(p.ring_degree);
        let c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, &engine, &mut sampler);
        let out = tgsw.external_product(&engine, &c, &decomp);
        assert!(out.phase(&key, &engine).max_distance(&mu) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "must match the TGSW sample")]
    fn mismatched_decomposer_levels_rejected() {
        let (key, engine, mut sampler, p) = setup();
        let tgsw = TgswCiphertext::encrypt_constant(1, &key, &p, &engine, &mut sampler)
            .to_spectrum(&engine);
        let mu = message_poly(p.ring_degree);
        let mut c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, &engine, &mut sampler);
        let mut scratch = crate::scratch::EpScratch::new(&engine, &p);
        // One level fewer than the sample's ℓ: must panic, not extract
        // garbage digit levels.
        let wrong = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels - 1);
        tgsw.external_product_assign(&engine, &mut c, &wrong, &mut scratch);
    }

    #[test]
    #[should_panic(expected = "2ℓ rows")]
    fn bad_row_count_rejected() {
        let engine = F64Fft::new(64);
        let rows = vec![TrlweCiphertext::trivial(TorusPolynomial::zero(64)).to_spectrum(&engine)];
        let _ = TgswSpectrum::<F64Fft>::from_rows(rows, 3);
    }
}
