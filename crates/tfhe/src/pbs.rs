//! Programmable (functional) bootstrapping.
//!
//! The gate bootstrap of Algorithm 1 is a special case of a more general
//! capability: since blind rotation lands the accumulator on
//! `X^{δ̄}·testv`, choosing the test-vector coefficients programs an
//! arbitrary *negacyclic* function of the input phase into the same
//! pipeline — at zero extra cost. This is the standard TFHE extension
//! (used by e.g. encrypted neural-network activation functions, one of the
//! workloads the paper's introduction motivates), and it exercises exactly
//! the FFT/BKU path MATCHA accelerates.

use crate::bootstrap::BootstrapKit;
use crate::lwe::LweCiphertext;
use crate::profile::{self, Phase};
use matcha_fft::FftEngine;
use matcha_math::{Torus32, TorusPolynomial};

/// A negacyclic look-up table over the input phase space.
///
/// The phase of the input sample is rounded to `δ̄ ∈ [0, 2N)`; the LUT
/// defines the output for `δ̄ ∈ [0, N)` and the negacyclic structure of the
/// ring forces `f(δ̄ + N) = −f(δ̄)` on the other half.
///
/// # Examples
///
/// ```
/// use matcha_tfhe::pbs::Lut;
/// use matcha_math::Torus32;
///
/// // The gate bootstrap's LUT: +1/8 on the positive half circle.
/// let lut = Lut::from_fn(256, |_| Torus32::from_dyadic(1, 3));
/// assert_eq!(lut.ring_degree(), 256);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lut {
    testv: TorusPolynomial,
}

impl Lut {
    /// Builds a LUT from `f(k)`, the desired output when the input phase
    /// rounds to `k/2N` for `k ∈ [0, N)`. Phases on the negative half
    /// circle (`k ∈ [N, 2N)`) produce `−f(k − N)` by ring structure.
    pub fn from_fn(ring_degree: usize, f: impl Fn(u32) -> Torus32) -> Self {
        let n = ring_degree;
        let mut coeffs = vec![Torus32::ZERO; n];
        // coeff0(X^δ · v) = v_0 at δ=0 and −v_{N−δ} for δ ∈ [1, N).
        coeffs[0] = f(0);
        for (j, c) in coeffs.iter_mut().enumerate().skip(1) {
            *c = -f((n - j) as u32);
        }
        Self {
            testv: TorusPolynomial::from_coeffs(coeffs),
        }
    }

    /// A LUT mapping a `2^bits`-bucket plaintext space through `g`.
    ///
    /// Messages are assumed encoded at phases `(2k+1)/2^(bits+1)` over the
    /// *half* circle (the standard "carry-free" PBS encoding), so bucket
    /// `k ∈ [0, 2^bits)` covers phase interval `[k, k+1)/2^bits · 1/2`.
    /// `g(k)` is the output torus value for bucket `k`.
    ///
    /// # Panics
    ///
    /// Panics if `2^bits` exceeds the ring degree.
    pub fn from_bucket_fn(ring_degree: usize, bits: u32, g: impl Fn(u32) -> Torus32) -> Self {
        let buckets = 1u32 << bits;
        assert!(
            (buckets as usize) <= ring_degree,
            "2^{bits} buckets exceed ring degree {ring_degree}"
        );
        let per_bucket = ring_degree as u32 / buckets;
        Self::from_fn(ring_degree, |k| g(k / per_bucket))
    }

    /// Ring degree `N` of the underlying test vector.
    pub fn ring_degree(&self) -> usize {
        self.testv.len()
    }

    /// The raw test vector (for inspection and tests).
    pub fn test_vector(&self) -> &TorusPolynomial {
        &self.testv
    }
}

impl<E: FftEngine> BootstrapKit<E> {
    /// Programmable bootstrap: applies `lut` to the input phase and
    /// returns a fresh, key-switched sample of the result.
    ///
    /// # Panics
    ///
    /// Panics if the LUT's ring degree differs from the parameter set's.
    pub fn bootstrap_with_lut(
        &self,
        engine: &E,
        input: &LweCiphertext,
        lut: &Lut,
    ) -> LweCiphertext {
        assert_eq!(
            lut.ring_degree(),
            self.params().ring_degree,
            "LUT ring degree mismatch"
        );
        let acc = self.blind_rotate(engine, input, lut.testv.clone());
        let extracted = profile::timed(Phase::Other, || acc.sample_extract());
        self.key_switch_key().switch(&extracted)
    }

    /// [`Self::bootstrap_with_lut`] into a caller-owned output through the
    /// scratch — zero allocations once warmed, bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if the LUT's ring degree differs from the parameter set's.
    pub fn bootstrap_with_lut_into(
        &self,
        engine: &E,
        input: &LweCiphertext,
        lut: &Lut,
        out: &mut LweCiphertext,
        scratch: &mut crate::scratch::BootstrapScratch<E>,
    ) {
        assert_eq!(
            lut.ring_degree(),
            self.params().ring_degree,
            "LUT ring degree mismatch"
        );
        scratch.test_vector_mut().copy_from(&lut.testv);
        self.blind_rotate_assign(engine, input, scratch);
        let mut extracted = std::mem::take(&mut scratch.extracted);
        profile::timed(Phase::Other, || {
            scratch.accumulator().sample_extract_into(&mut extracted)
        });
        self.key_switch_key().switch_into(&extracted, out);
        scratch.extracted = extracted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::F64Fft;
    use matcha_math::TorusSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 256;

    fn setup() -> (ClientKey, BootstrapKit<F64Fft>, F64Fft, StdRng) {
        let mut rng = StdRng::seed_from_u64(71);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(N);
        let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
        (client, kit, engine, rng)
    }

    fn encrypt_phase(client: &ClientKey, phase: f64, rng: &mut StdRng) -> LweCiphertext {
        let mut sampler = TorusSampler::new(rng);
        LweCiphertext::encrypt(
            Torus32::from_f64(phase),
            client.lwe_key(),
            client.params().lwe_noise_stdev,
            &mut sampler,
        )
    }

    #[test]
    fn constant_lut_reproduces_gate_bootstrap() {
        let (client, kit, engine, mut rng) = setup();
        let mu = Torus32::from_dyadic(1, 3);
        let lut = Lut::from_fn(N, |_| mu);
        for message in [true, false] {
            let c = client.encrypt_with(message, &mut rng);
            let via_lut = kit.bootstrap_with_lut(&engine, &c, &lut);
            let via_gate = kit.bootstrap(&engine, &c, mu);
            assert_eq!(client.decrypt(&via_lut), client.decrypt(&via_gate));
            assert_eq!(client.decrypt(&via_lut), message);
        }
    }

    #[test]
    fn threshold_lut_detects_quadrant() {
        // f(phase) = +1/8 iff phase ∈ (0, 1/4), else −1/8 — distinguishes
        // "small positive" from "large positive" inputs.
        let (client, kit, engine, mut rng) = setup();
        let eighth = Torus32::from_dyadic(1, 3);
        let lut = Lut::from_fn(N, |k| if k < N as u32 / 2 { eighth } else { -eighth });
        // phase 1/8 → first quadrant → true; phase 3/8 → second → false.
        let small = encrypt_phase(&client, 0.125, &mut rng);
        let large = encrypt_phase(&client, 0.375, &mut rng);
        assert!(client.decrypt(&kit.bootstrap_with_lut(&engine, &small, &lut)));
        assert!(!client.decrypt(&kit.bootstrap_with_lut(&engine, &large, &lut)));
    }

    #[test]
    fn bucket_lut_computes_2bit_function() {
        // 2-bit message space on the half circle; apply g(k) = parity(k)
        // mapped to ±1/8.
        let (client, kit, engine, mut rng) = setup();
        let eighth = Torus32::from_dyadic(1, 3);
        let lut = Lut::from_bucket_fn(N, 2, |k| if k % 2 == 1 { eighth } else { -eighth });
        for bucket in 0u32..4 {
            // Encode bucket k at the center of its phase interval:
            // (2k+1)/16 of a full turn over the half circle.
            let phase = (2 * bucket + 1) as f64 / 16.0;
            let c = encrypt_phase(&client, phase, &mut rng);
            let out = kit.bootstrap_with_lut(&engine, &c, &lut);
            assert_eq!(client.decrypt(&out), bucket % 2 == 1, "bucket {bucket}");
        }
    }

    #[test]
    fn negacyclic_extension_negates() {
        // Inputs on the negative half circle produce the negated output.
        let (client, kit, engine, mut rng) = setup();
        let eighth = Torus32::from_dyadic(1, 3);
        let lut = Lut::from_fn(N, |_| eighth);
        let pos = encrypt_phase(&client, 0.2, &mut rng);
        let neg = encrypt_phase(&client, -0.2, &mut rng);
        assert!(client.decrypt(&kit.bootstrap_with_lut(&engine, &pos, &lut)));
        assert!(!client.decrypt(&kit.bootstrap_with_lut(&engine, &neg, &lut)));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_ring_degree_rejected() {
        let (_, kit, engine, mut rng) = setup();
        let mut sampler = TorusSampler::new(&mut rng);
        let c = LweCiphertext::encrypt(
            Torus32::ZERO,
            &crate::secret::LweSecretKey::generate(16, &mut sampler),
            1e-9,
            &mut sampler,
        );
        let lut = Lut::from_fn(128, |_| Torus32::ZERO);
        let _ = kit.bootstrap_with_lut(&engine, &c, &lut);
    }

    #[test]
    #[should_panic(expected = "exceed ring degree")]
    fn oversized_bucket_space_rejected() {
        let _ = Lut::from_bucket_fn(64, 8, |_| Torus32::ZERO);
    }
}
