//! Framed wire sessions: the [`codec`](crate::codec) over any
//! `Read + Write` transport.
//!
//! A real deployment of the paper's client/evaluator split talks over a
//! wire: the client keeps the secret key, packs its Boolean inputs into
//! TRLWE transport samples ([`packing::pack_bits`], 2 torus words per bit
//! instead of `n + 1` — ~251× less upload at the paper's parameters), and
//! ships whole circuits; the evaluator unpacks each bit with a sample
//! extraction and a key switch straight into the run's value slab and
//! returns the outcome. This module is that wire: a length-prefixed frame
//! protocol speaking [`Codec`] messages over anything that reads and
//! writes bytes — a TCP stream, a Unix socket, or the in-memory
//! [`duplex`] pipe the test suite uses (the build container has no
//! network).
//!
//! # Frame grammar
//!
//! ```text
//! frame   := len:u32le payload[len]         (len ≤ 64 MiB)
//! payload := magic[4] version:u8 body       (one Codec message, exactly)
//!
//! client→server: MSHI hello                 { protocol:u32 }
//! server→client: MSWE welcome               { params: MPAR }
//! client→server: MSUB submit                { netlist: MNET,
//!                                             kind:u8 (0 = per-LWE MLWE*,
//!                                                      1 = packed MRLW*),
//!                                             count:u32, ciphertexts… }
//! server→client: MSTK ticket                { id:u64 }
//! server→client: MSOC outcome               { id:u64, outcome }
//! ```
//!
//! A session is a hello/welcome handshake followed by any number of
//! submit → ticket → outcome exchanges; the client closing its end
//! between frames ends the session cleanly. Every arm of the
//! [`CircuitOutcome`] taxonomy survives the wire as a structured frame
//! ([`SessionOutcome`]), including the full
//! [`RejectReason`] detail — `Lint` sites, `NoiseBudget` bounds — so a
//! remote client sees exactly what an in-process caller would.
//!
//! # Example
//!
//! ```
//! use matcha_tfhe::{session, packing, CircuitNetlist, ClientKey, Gate, ServerKey};
//! use matcha_tfhe::session::{SessionClient, SessionServer, SessionOutcome};
//! use matcha_tfhe::{params::ParameterSet, server::CircuitServer};
//! use matcha_fft::F64Fft;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(17);
//! let client_key = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
//! let engine = F64Fft::new(client_key.params().ring_degree);
//! let key = Arc::new(ServerKey::new(&client_key, engine, &mut rng));
//! let server = CircuitServer::start(key, 2);
//!
//! // One duplex pipe; the server end is driven on its own thread.
//! let (near, far) = session::duplex();
//! let sess = SessionServer::new(server.client(), *server.params());
//! let serve = std::thread::spawn(move || sess.serve(far));
//!
//! let mut net = CircuitNetlist::new();
//! let a = net.input();
//! let b = net.input();
//! let g = net.gate(Gate::And, a, b);
//! net.mark_output(g);
//!
//! let engine = F64Fft::new(client_key.params().ring_degree);
//! let mut wire = SessionClient::connect(near).unwrap();
//! wire.submit_bits(&client_key, &net, &[true, true], &engine, &mut rng).unwrap();
//! let (_, outcome) = wire.wait().unwrap();
//! let run = match outcome {
//!     SessionOutcome::Completed(run) => run,
//!     other => panic!("{other:?}"),
//! };
//! assert!(client_key.decrypt(&run.outputs[0]));
//! drop(wire); // close the session: serve() returns
//! assert_eq!(serve.join().unwrap().unwrap(), 1);
//! ```

use crate::analyze::equiv::{self, Counterexample};
use crate::analyze::LintKind;
use crate::circuit::CircuitNetlist;
use crate::codec::{
    self, read_bytes_exact, read_count, read_f64, read_u32, read_u64, write_f64, write_u32,
    write_u64, Codec,
};
use crate::lwe::LweCiphertext;
use crate::packing;
use crate::params::ParameterSet;
use crate::secret::ClientKey;
use crate::server::{CircuitClient, CircuitOutcome, RejectReason};
use crate::tlwe::TrlweCiphertext;
use matcha_fft::FftEngine;
use rand::Rng;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// The protocol revision spoken by [`SessionClient`] and
/// [`SessionServer`]. A mismatched hello fails the handshake.
pub const PROTOCOL: u32 = 1;

/// Largest frame either side accepts (DoS guard): comfortably above the
/// largest legitimate submission (a `MAX_LEN`-input per-LWE circuit), far
/// below anything that could exhaust the host.
const FRAME_MAX: u32 = 1 << 26;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one length-prefixed frame and flushes the transport.
fn write_frame<W: Write, T: Codec>(mut w: W, msg: &T) -> io::Result<()> {
    let bytes = msg.to_bytes();
    if bytes.len() > FRAME_MAX as usize {
        return Err(bad(format!("frame of {} bytes exceeds cap", bytes.len())));
    }
    write_u32(&mut w, bytes.len() as u32)?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads one frame and decodes it as exactly one `T` (trailing bytes in
/// the frame are rejected by [`Codec::from_bytes`]).
fn read_frame<R: Read, T: Codec>(mut r: R) -> io::Result<T> {
    match read_frame_opt(&mut r)? {
        Some(msg) => Ok(msg),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed",
        )),
    }
}

/// Like [`read_frame`], but a transport that is cleanly closed *between*
/// frames (EOF before any length byte) yields `Ok(None)`; EOF anywhere
/// inside a frame is still an error.
fn read_frame_opt<R: Read, T: Codec>(mut r: R) -> io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > FRAME_MAX {
        return Err(bad(format!("frame length {len} outside 1..={FRAME_MAX}")));
    }
    let bytes = read_bytes_exact(&mut r, len as usize)?;
    T::from_bytes(&bytes).map(Some)
}

/// The client's opening frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientHello {
    /// Protocol revision the client speaks (must equal [`PROTOCOL`]).
    pub protocol: u32,
}

impl Codec for ClientHello {
    const MAGIC: [u8; 4] = *b"MSHI";

    fn encode_body<W: Write>(&self, w: W) -> io::Result<()> {
        write_u32(w, self.protocol)
    }

    fn decode_body<R: Read>(r: R) -> io::Result<Self> {
        Ok(Self {
            protocol: read_u32(r)?,
        })
    }
}

/// The server's handshake reply: the parameter set client-side
/// encryption must target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerHello {
    /// The server key's parameter set.
    pub params: ParameterSet,
}

impl Codec for ServerHello {
    const MAGIC: [u8; 4] = *b"MSWE";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        self.params.encode(&mut w)
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        Ok(Self {
            params: ParameterSet::decode(&mut r)?,
        })
    }
}

/// The input payload of one wire submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionInputs {
    /// One gate-level LWE sample per input slot — `(n + 1)` torus words
    /// per bit on the wire.
    Lwe(Vec<LweCiphertext>),
    /// Packed TRLWE transport — sample `k` carries input slots
    /// `k·N .. (k+1)·N` in its coefficients, 2 torus words per bit.
    Packed(Vec<TrlweCiphertext>),
}

/// One circuit submission: the netlist and its encrypted inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitCircuit {
    /// The netlist to run.
    pub netlist: CircuitNetlist,
    /// Its encrypted inputs, per-LWE or packed.
    pub inputs: SessionInputs,
}

impl Codec for SubmitCircuit {
    const MAGIC: [u8; 4] = *b"MSUB";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        self.netlist.encode(&mut w)?;
        match &self.inputs {
            SessionInputs::Lwe(inputs) => {
                w.write_all(&[0])?;
                write_u32(&mut w, inputs.len() as u32)?;
                for c in inputs {
                    c.encode(&mut w)?;
                }
            }
            SessionInputs::Packed(samples) => {
                w.write_all(&[1])?;
                write_u32(&mut w, samples.len() as u32)?;
                for s in samples {
                    s.encode(&mut w)?;
                }
            }
        }
        Ok(())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let netlist = CircuitNetlist::decode(&mut r)?;
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        let count = read_count(&mut r, codec::MAX_LEN)?;
        let inputs = match kind[0] {
            0 => {
                let mut v = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    v.push(LweCiphertext::decode(&mut r)?);
                }
                SessionInputs::Lwe(v)
            }
            1 => {
                let mut v = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    v.push(TrlweCiphertext::decode(&mut r)?);
                }
                SessionInputs::Packed(v)
            }
            k => return Err(bad(format!("unknown input kind {k}"))),
        };
        Ok(Self { netlist, inputs })
    }
}

/// The server's immediate acknowledgement of a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// Submission sequence number on this session, starting at 0.
    pub id: u64,
}

impl Codec for Ticket {
    const MAGIC: [u8; 4] = *b"MSTK";

    fn encode_body<W: Write>(&self, w: W) -> io::Result<()> {
        write_u64(w, self.id)
    }

    fn decode_body<R: Read>(r: R) -> io::Result<Self> {
        Ok(Self { id: read_u64(r)? })
    }
}

/// A completed run as it crosses the wire: the output ciphertexts plus
/// the run statistics of [`CircuitRun`](crate::circuit::CircuitRun).
#[derive(Clone, Debug, PartialEq)]
pub struct SessionRun {
    /// Ciphertexts of the marked outputs, in marking order.
    pub outputs: Vec<LweCiphertext>,
    /// Wave-front levels dispatched.
    pub waves: usize,
    /// Ops evaluated (everything but inputs/constants).
    pub scheduled_ops: usize,
    /// Total gate bootstraps performed.
    pub bootstraps: usize,
    /// Server-side wall-clock seconds for the whole circuit.
    pub elapsed_s: f64,
}

/// How one wire submission ended — [`CircuitOutcome`], one structured
/// frame arm per taxonomy arm, reject reasons intact.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionOutcome {
    /// The circuit ran to completion.
    Completed(SessionRun),
    /// The circuit panicked during execution (the message is the panic
    /// payload).
    Faulted(String),
    /// The circuit was turned away without running.
    Rejected(RejectReason),
    /// The circuit's deadline passed before it finished.
    Expired,
    /// The circuit was cancelled before finishing.
    Cancelled,
}

impl SessionOutcome {
    /// The completed run, if any — `None` for every other arm.
    pub fn completed(self) -> Option<SessionRun> {
        match self {
            SessionOutcome::Completed(run) => Some(run),
            _ => None,
        }
    }
}

impl From<CircuitOutcome> for SessionOutcome {
    fn from(outcome: CircuitOutcome) -> Self {
        match outcome {
            CircuitOutcome::Completed(run) => SessionOutcome::Completed(SessionRun {
                outputs: run.outputs,
                waves: run.waves,
                scheduled_ops: run.scheduled_ops,
                bootstraps: run.bootstraps,
                elapsed_s: run.elapsed_s,
            }),
            CircuitOutcome::Faulted(msg) => SessionOutcome::Faulted(msg),
            CircuitOutcome::Rejected(reason) => SessionOutcome::Rejected(reason),
            CircuitOutcome::Expired => SessionOutcome::Expired,
            CircuitOutcome::Cancelled => SessionOutcome::Cancelled,
        }
    }
}

/// Stable wire codes for [`LintKind`] (appendix of the outcome frame).
/// Append-only: existing codes never change meaning.
const LINT_KINDS: [LintKind; 8] = [
    LintKind::DeadNode,
    LintKind::NoOutputs,
    LintKind::UnusedInput,
    LintKind::ConstantFoldable,
    LintKind::DuplicateGate,
    LintKind::MuxIdenticalArms,
    LintKind::DoubleNot,
    LintKind::EquivUnknown,
];

fn lint_code(kind: LintKind) -> u8 {
    LINT_KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("LINT_KINDS covers every kind") as u8
}

fn lint_from_code(code: u8) -> io::Result<LintKind> {
    LINT_KINDS
        .get(code as usize)
        .copied()
        .ok_or_else(|| bad(format!("unknown lint kind {code}")))
}

fn encode_reason<W: Write>(mut w: W, reason: &RejectReason) -> io::Result<()> {
    match reason {
        RejectReason::QueueFull => w.write_all(&[0]),
        RejectReason::QuotaExceeded => w.write_all(&[1]),
        RejectReason::DeadlineUnmeetable => w.write_all(&[2]),
        RejectReason::InvalidInput => w.write_all(&[3]),
        RejectReason::Lint { kind, node } => {
            w.write_all(&[4, lint_code(*kind)])?;
            write_u32(&mut w, *node as u32)
        }
        RejectReason::NoiseBudget {
            output,
            bound,
            budget,
        } => {
            w.write_all(&[5])?;
            write_u32(&mut w, *output as u32)?;
            write_f64(&mut w, *bound)?;
            write_f64(&mut w, *budget)
        }
        RejectReason::Shutdown => w.write_all(&[6]),
        RejectReason::NotEquivalent {
            output,
            counterexample,
        } => {
            w.write_all(&[7])?;
            write_u32(&mut w, *output as u32)?;
            write_u32(&mut w, counterexample.widths.len() as u32)?;
            w.write_all(&counterexample.widths)?;
            // Bit count is implied by the widths (they partition the
            // assignment); only the packed bits follow, LSB-first within
            // each byte, padding bits zero.
            let mut packed = vec![0u8; counterexample.bits.len().div_ceil(8)];
            for (i, &bit) in counterexample.bits.iter().enumerate() {
                packed[i / 8] |= (bit as u8) << (i % 8);
            }
            w.write_all(&packed)
        }
    }
}

fn decode_reason<R: Read>(mut r: R) -> io::Result<RejectReason> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => RejectReason::QueueFull,
        1 => RejectReason::QuotaExceeded,
        2 => RejectReason::DeadlineUnmeetable,
        3 => RejectReason::InvalidInput,
        4 => {
            r.read_exact(&mut tag)?;
            RejectReason::Lint {
                kind: lint_from_code(tag[0])?,
                node: read_u32(&mut r)? as usize,
            }
        }
        5 => RejectReason::NoiseBudget {
            output: read_u32(&mut r)? as usize,
            bound: read_f64(&mut r)?,
            budget: read_f64(&mut r)?,
        },
        6 => RejectReason::Shutdown,
        7 => {
            let output = read_u32(&mut r)? as usize;
            let widths_len = read_count(&mut r, codec::MAX_LEN)?;
            let widths = read_bytes_exact(&mut r, widths_len)?;
            let mut bit_count = 0usize;
            for &w in &widths {
                if w == 0 || w as usize > equiv::MAX_WORD_WIDTH {
                    return Err(bad(format!("counterexample word width {w} out of range")));
                }
                bit_count += w as usize;
            }
            let packed = read_bytes_exact(&mut r, bit_count.div_ceil(8))?;
            let mut bits = Vec::with_capacity(bit_count.min(codec::MAX_LEN as usize));
            for i in 0..bit_count {
                bits.push(packed[i / 8] >> (i % 8) & 1 == 1);
            }
            // Canonical form: padding bits in the last byte must be zero
            // (otherwise two encodings decode to the same value).
            if !bit_count.is_multiple_of(8) && packed[bit_count / 8] >> (bit_count % 8) != 0 {
                return Err(bad("counterexample padding bits must be zero"));
            }
            RejectReason::NotEquivalent {
                output,
                counterexample: Counterexample::with_widths(bits, widths),
            }
        }
        t => return Err(bad(format!("unknown reject reason {t}"))),
    })
}

/// The server's final word on one submission.
#[derive(Clone, Debug, PartialEq)]
pub struct OutcomeFrame {
    /// The [`Ticket::id`] this outcome resolves.
    pub id: u64,
    /// How the circuit ended.
    pub outcome: SessionOutcome,
}

impl Codec for OutcomeFrame {
    const MAGIC: [u8; 4] = *b"MSOC";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u64(&mut w, self.id)?;
        match &self.outcome {
            SessionOutcome::Completed(run) => {
                w.write_all(&[0])?;
                write_u32(&mut w, run.outputs.len() as u32)?;
                for c in &run.outputs {
                    c.encode(&mut w)?;
                }
                write_u32(&mut w, run.waves as u32)?;
                write_u32(&mut w, run.scheduled_ops as u32)?;
                write_u32(&mut w, run.bootstraps as u32)?;
                write_f64(&mut w, run.elapsed_s)
            }
            SessionOutcome::Faulted(msg) => {
                w.write_all(&[1])?;
                let bytes = msg.as_bytes();
                write_u32(&mut w, bytes.len() as u32)?;
                w.write_all(bytes)
            }
            SessionOutcome::Rejected(reason) => {
                w.write_all(&[2])?;
                encode_reason(&mut w, reason)
            }
            SessionOutcome::Expired => w.write_all(&[3]),
            SessionOutcome::Cancelled => w.write_all(&[4]),
        }
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let id = read_u64(&mut r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let outcome = match tag[0] {
            0 => {
                let count = read_count(&mut r, codec::MAX_LEN)?;
                let mut outputs = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    outputs.push(LweCiphertext::decode(&mut r)?);
                }
                SessionOutcome::Completed(SessionRun {
                    outputs,
                    waves: read_u32(&mut r)? as usize,
                    scheduled_ops: read_u32(&mut r)? as usize,
                    bootstraps: read_u32(&mut r)? as usize,
                    elapsed_s: read_f64(&mut r)?,
                })
            }
            1 => {
                let len = read_count(&mut r, codec::MAX_LEN)?;
                let bytes = read_bytes_exact(&mut r, len)?;
                SessionOutcome::Faulted(
                    String::from_utf8(bytes).map_err(|_| bad("fault message is not UTF-8"))?,
                )
            }
            2 => SessionOutcome::Rejected(decode_reason(&mut r)?),
            3 => SessionOutcome::Expired,
            4 => SessionOutcome::Cancelled,
            t => return Err(bad(format!("unknown outcome tag {t}"))),
        };
        Ok(Self { id, outcome })
    }
}

/// The server side of a session: drives one [`CircuitClient`] per
/// connection, turning submit frames into scheduler submissions and
/// outcomes back into frames.
pub struct SessionServer {
    client: CircuitClient,
    params: ParameterSet,
}

impl SessionServer {
    /// A session endpoint submitting through `client` and advertising
    /// `params` in the handshake (a
    /// [`CircuitServer`](crate::server::CircuitServer)'s
    /// [`params()`](crate::server::CircuitServer::params)).
    pub fn new(client: CircuitClient, params: ParameterSet) -> Self {
        Self { client, params }
    }

    /// Drives one connection to completion: handshake, then
    /// submit → ticket → outcome exchanges until the peer closes its end
    /// between frames. Returns how many circuits the session served.
    /// Packed submissions are unpacked by the scheduler at admission —
    /// sample-extract plus key switch straight into the run's slab.
    ///
    /// Each connection serves one circuit at a time (the protocol is
    /// synchronous); run one `serve` per connection — on its own thread —
    /// and the [`CircuitServer`](crate::server::CircuitServer) interleaves
    /// the circuits of all live sessions.
    ///
    /// # Errors
    ///
    /// Returns transport I/O errors, malformed frames (`InvalidData`),
    /// and mid-frame disconnects (`UnexpectedEof`).
    pub fn serve<S: Read + Write>(&self, mut conn: S) -> io::Result<u64> {
        let hello: ClientHello = read_frame(&mut conn)?;
        if hello.protocol != PROTOCOL {
            return Err(bad(format!(
                "peer speaks protocol {}, this server speaks {PROTOCOL}",
                hello.protocol
            )));
        }
        write_frame(
            &mut conn,
            &ServerHello {
                params: self.params,
            },
        )?;
        let mut served = 0u64;
        loop {
            let submit: SubmitCircuit = match read_frame_opt(&mut conn)? {
                Some(msg) => msg,
                None => return Ok(served),
            };
            let pending = match submit.inputs {
                SessionInputs::Lwe(inputs) => self.client.submit(submit.netlist, inputs),
                SessionInputs::Packed(samples) => {
                    self.client.submit_packed(submit.netlist, samples)
                }
            };
            let id = served;
            write_frame(&mut conn, &Ticket { id })?;
            let outcome = pending.wait();
            write_frame(
                &mut conn,
                &OutcomeFrame {
                    id,
                    outcome: outcome.into(),
                },
            )?;
            served += 1;
        }
    }
}

/// The client side of a session: packs inputs, frames submissions, and
/// decodes outcomes.
pub struct SessionClient<S: Read + Write> {
    conn: S,
    params: ParameterSet,
}

impl<S: Read + Write> SessionClient<S> {
    /// Performs the hello/welcome handshake over `conn`.
    ///
    /// # Errors
    ///
    /// Returns transport errors and a malformed or version-mismatched
    /// welcome (`InvalidData`).
    pub fn connect(mut conn: S) -> io::Result<Self> {
        write_frame(&mut conn, &ClientHello { protocol: PROTOCOL })?;
        let welcome: ServerHello = read_frame(&mut conn)?;
        Ok(Self {
            conn,
            params: welcome.params,
        })
    }

    /// The parameter set the server advertised in its welcome.
    pub fn params(&self) -> &ParameterSet {
        &self.params
    }

    /// Submits a circuit with per-LWE inputs; returns its ticket id.
    ///
    /// # Errors
    ///
    /// Returns transport errors (including a malformed ticket frame).
    pub fn submit(
        &mut self,
        netlist: &CircuitNetlist,
        inputs: Vec<LweCiphertext>,
    ) -> io::Result<u64> {
        self.send(SubmitCircuit {
            netlist: netlist.clone(),
            inputs: SessionInputs::Lwe(inputs),
        })
    }

    /// Submits a circuit with already-packed TRLWE transport samples;
    /// returns its ticket id.
    ///
    /// # Errors
    ///
    /// Returns transport errors (including a malformed ticket frame).
    pub fn submit_packed(
        &mut self,
        netlist: &CircuitNetlist,
        samples: Vec<TrlweCiphertext>,
    ) -> io::Result<u64> {
        self.send(SubmitCircuit {
            netlist: netlist.clone(),
            inputs: SessionInputs::Packed(samples),
        })
    }

    /// Packs `bits` into `ceil(bits.len() / N)` TRLWE transport samples
    /// with [`packing::pack_bits`] and submits — the bandwidth-optimal
    /// upload path (2 torus words per bit on the wire). `bits.len()` must
    /// equal the netlist's input count for the submission to be admitted.
    ///
    /// # Errors
    ///
    /// Returns transport errors (including a malformed ticket frame).
    ///
    /// # Panics
    ///
    /// Panics if `key`'s parameters disagree with the server's advertised
    /// ring degree (the packed samples would be meaningless).
    pub fn submit_bits<E: FftEngine, R: Rng>(
        &mut self,
        key: &ClientKey,
        netlist: &CircuitNetlist,
        bits: &[bool],
        engine: &E,
        rng: &mut R,
    ) -> io::Result<u64> {
        let n = self.params.ring_degree;
        assert_eq!(
            key.params().ring_degree,
            n,
            "client key ring degree {} does not match the server's {}",
            key.params().ring_degree,
            n
        );
        let samples: Vec<TrlweCiphertext> = bits
            .chunks(n)
            .map(|chunk| packing::pack_bits(key, chunk, engine, rng))
            .collect();
        self.submit_packed(netlist, samples)
    }

    fn send(&mut self, msg: SubmitCircuit) -> io::Result<u64> {
        write_frame(&mut self.conn, &msg)?;
        let ticket: Ticket = read_frame(&mut self.conn)?;
        Ok(ticket.id)
    }

    /// Blocks for the next outcome frame, returning the ticket id it
    /// resolves and the structured outcome.
    ///
    /// # Errors
    ///
    /// Returns transport errors and malformed outcome frames.
    pub fn wait(&mut self) -> io::Result<(u64, SessionOutcome)> {
        let frame: OutcomeFrame = read_frame(&mut self.conn)?;
        Ok((frame.id, frame.outcome))
    }
}

/// One direction of the in-memory pipe.
struct Channel {
    state: Mutex<ChannelState>,
    cond: Condvar,
}

#[derive(Default)]
struct ChannelState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Channel {
    fn new() -> Self {
        Self {
            state: Mutex::new(ChannelState::default()),
            cond: Condvar::new(),
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.closed = true;
        self.cond.notify_all();
    }
}

/// One end of an in-memory duplex byte stream — the no-network stand-in
/// for a socket. Blocking reads wait for the peer's writes; dropping an
/// end closes both directions (the peer reads EOF, its writes fail with
/// `BrokenPipe`). Ends are `Send`, so a session's server half can run on
/// its own thread.
pub struct PipeEnd {
    rx: Arc<Channel>,
    tx: Arc<Channel>,
}

/// An in-memory duplex byte stream: what one end writes, the other
/// reads. See [`PipeEnd`].
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a = Arc::new(Channel::new());
    let b = Arc::new(Channel::new());
    (
        PipeEnd {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        PipeEnd { rx: b, tx: a },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.rx.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0);
            }
            st = self
                .rx
                .cond
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let take = buf.len().min(st.buf.len());
        for slot in buf.iter_mut().take(take) {
            *slot = st.buf.pop_front().expect("len checked");
        }
        Ok(take)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.tx.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        st.buf.extend(buf);
        self.tx.cond.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultAction, FaultPlan};
    use crate::gates::{Gate, ServerKey};
    use crate::server::{CircuitServer, ServerConfig};
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::thread;

    fn keys(seed: u64) -> (ClientKey, Arc<ServerKey<F64Fft>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let key = Arc::new(ServerKey::new(&client, engine, &mut rng));
        (client, key)
    }

    fn xor_chain(len: usize) -> CircuitNetlist {
        let mut net = CircuitNetlist::new();
        let mut acc = net.input();
        for _ in 0..len {
            let next = net.input();
            acc = net.gate(Gate::Xor, acc, next);
        }
        net.mark_output(acc);
        net
    }

    /// Spawns a serving thread over one duplex pipe, returning the near
    /// end and the join handle.
    fn serve_on_thread(server: &CircuitServer) -> (PipeEnd, thread::JoinHandle<io::Result<u64>>) {
        let (near, far) = duplex();
        let sess = SessionServer::new(server.client(), *server.params());
        let handle = thread::spawn(move || sess.serve(far));
        (near, handle)
    }

    #[test]
    fn pipe_moves_bytes_and_closes() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        drop(a);
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after peer drop");
        assert!(b.write_all(b"x").is_err(), "write to closed peer fails");
    }

    #[test]
    fn handshake_exchanges_params() {
        let (_, key) = keys(1);
        let server = CircuitServer::start(key, 1);
        let (near, handle) = serve_on_thread(&server);
        let wire = SessionClient::connect(near).unwrap();
        assert_eq!(*wire.params(), ParameterSet::TEST_FAST);
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 0);
    }

    #[test]
    fn protocol_mismatch_fails_serve() {
        let (_, key) = keys(2);
        let server = CircuitServer::start(key, 1);
        let (mut near, handle) = serve_on_thread(&server);
        write_frame(&mut near, &ClientHello { protocol: 99 }).unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn lwe_submission_completes_over_the_wire() {
        let (client, key) = keys(3);
        let mut rng = StdRng::seed_from_u64(30);
        let server = CircuitServer::start(key, 2);
        let (near, handle) = serve_on_thread(&server);
        let mut wire = SessionClient::connect(near).unwrap();

        let net = xor_chain(3);
        let bits = [true, false, true, true];
        let inputs: Vec<LweCiphertext> = bits
            .iter()
            .map(|&b| client.encrypt_with(b, &mut rng))
            .collect();
        let id = wire.submit(&net, inputs).unwrap();
        let (oid, outcome) = wire.wait().unwrap();
        assert_eq!(id, oid);
        let run = outcome.completed().expect("completed");
        assert_eq!(run.bootstraps, 3);
        assert!(client.decrypt(&run.outputs[0]), "1^0^1^1 = 1");
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn packed_submission_matches_in_process_bit_for_bit() {
        let (client, key) = keys(4);
        let mut rng = StdRng::seed_from_u64(40);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = CircuitServer::start(key, 2);
        let (near, handle) = serve_on_thread(&server);
        let mut wire = SessionClient::connect(near).unwrap();

        let net = xor_chain(4);
        let bits = [true, true, false, true, false];
        let samples = vec![packing::pack_bits(&client, &bits, &engine, &mut rng)];

        let id = wire.submit_packed(&net, samples.clone()).unwrap();
        let (oid, outcome) = wire.wait().unwrap();
        assert_eq!(id, oid);
        let over_wire = outcome.completed().expect("completed");

        // The same packed samples submitted in-process: the unpack
        // (sample-extract + key switch) is deterministic, so outputs
        // must be bit-identical.
        let in_process = server
            .client()
            .submit_packed(net.clone(), samples)
            .wait()
            .completed()
            .expect("completed");
        assert_eq!(over_wire.outputs, in_process.outputs);
        assert!(client.decrypt(&over_wire.outputs[0]), "1^1^0^1^0 = 1");
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn submit_bits_packs_and_completes() {
        let (client, key) = keys(5);
        let mut rng = StdRng::seed_from_u64(50);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = CircuitServer::start(key, 2);
        let (near, handle) = serve_on_thread(&server);
        let mut wire = SessionClient::connect(near).unwrap();

        let net = xor_chain(2);
        wire.submit_bits(&client, &net, &[false, true, true], &engine, &mut rng)
            .unwrap();
        let (_, outcome) = wire.wait().unwrap();
        let run = outcome.completed().expect("completed");
        assert!(!client.decrypt(&run.outputs[0]), "0^1^1 = 0");
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn invalid_packed_submission_rejected_over_the_wire() {
        let (_, key) = keys(6);
        let server = CircuitServer::start(key, 1);
        let (near, handle) = serve_on_thread(&server);
        let mut wire = SessionClient::connect(near).unwrap();

        // Wrong ring degree: rejected at the submit boundary, and the
        // rejection survives the wire as a structured frame.
        let net = xor_chain(2);
        let samples = vec![TrlweCiphertext::zero(64)];
        wire.submit_packed(&net, samples).unwrap();
        let (_, outcome) = wire.wait().unwrap();
        assert_eq!(
            outcome,
            SessionOutcome::Rejected(RejectReason::InvalidInput)
        );
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn fault_crosses_the_wire_as_structured_frame() {
        let (client, key) = keys(7);
        let mut rng = StdRng::seed_from_u64(70);
        // Admission tag 0, node 2 (the XOR gate) panics.
        let faults = FaultPlan::new().inject(0, 2, FaultAction::Panic);
        let server =
            CircuitServer::start_with_faults(key, 1, ServerConfig::default(), Arc::new(faults));
        let (near, handle) = serve_on_thread(&server);
        let mut wire = SessionClient::connect(near).unwrap();

        let net = xor_chain(1);
        let inputs = vec![
            client.encrypt_with(true, &mut rng),
            client.encrypt_with(false, &mut rng),
        ];
        wire.submit(&net, inputs).unwrap();
        let (_, outcome) = wire.wait().unwrap();
        assert!(matches!(outcome, SessionOutcome::Faulted(_)), "{outcome:?}");
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn refuted_rewrite_crosses_the_wire_with_its_counterexample() {
        use crate::analyze::equiv::EquivBudget;
        use crate::analyze::{AnalysisPolicy, SimplifyReport};
        use crate::circuit::GateOp;

        /// An unsound rewrite pass: simplify, then flip the first XOR to
        /// XNOR — the equivalence gate must refute it at admission.
        fn broken_pass(net: &CircuitNetlist) -> (CircuitNetlist, SimplifyReport) {
            let (simplified, report) = crate::analyze::simplify(net);
            let mut ops = simplified.ops().to_vec();
            for op in ops.iter_mut() {
                if let GateOp::Binary(Gate::Xor, a, b) = *op {
                    *op = GateOp::Binary(Gate::Xnor, a, b);
                    break;
                }
            }
            let broken = CircuitNetlist::from_parts(ops, simplified.outputs().to_vec())
                .expect("mutated netlist keeps the canonical shape");
            (broken, report)
        }

        let (client, key) = keys(11);
        let mut rng = StdRng::seed_from_u64(110);
        let config = ServerConfig {
            analysis: Some(AnalysisPolicy {
                require_equivalence: Some(EquivBudget::default()),
                ..AnalysisPolicy::default()
            }),
            ..ServerConfig::default()
        };
        let server = CircuitServer::start_with_rewrite(key, 1, config, broken_pass);
        let (near, handle) = serve_on_thread(&server);
        let mut wire = SessionClient::connect(near).unwrap();

        let net = xor_chain(2);
        let inputs = vec![
            client.encrypt_with(true, &mut rng),
            client.encrypt_with(false, &mut rng),
            client.encrypt_with(true, &mut rng),
        ];
        wire.submit(&net, inputs).unwrap();
        let (_, outcome) = wire.wait().unwrap();
        let reason = match &outcome {
            SessionOutcome::Rejected(reason) => reason.clone(),
            other => panic!("expected a rejection, got {other:?}"),
        };
        match &reason {
            RejectReason::NotEquivalent {
                output,
                counterexample,
            } => {
                assert_eq!(*output, 0);
                assert_eq!(counterexample.bits.len(), 3, "one bit per input slot");
                // The structured reason survived the wire bit-exactly:
                // re-framing it reproduces the received frame.
                let frame = OutcomeFrame {
                    id: 0,
                    outcome: outcome.clone(),
                };
                let back = OutcomeFrame::from_bytes(&frame.to_bytes()).unwrap();
                assert_eq!(back, frame);
                // And the replayed counterexample distinguishes the
                // submission from the broken rewrite.
                let (broken, _) = broken_pass(&net);
                let want = crate::analyze::equiv::eval_netlist(&net, &counterexample.bits);
                let got = crate::analyze::equiv::eval_netlist(&broken, &counterexample.bits);
                assert_ne!(want[*output], got[*output]);
                // The human-readable reason renders per-word hex.
                assert!(reason.to_string().contains("in[0]=0x"), "display: {reason}");
            }
            other => panic!("expected NotEquivalent over the wire, got {other:?}"),
        }
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn several_submissions_share_one_session() {
        let (client, key) = keys(8);
        let mut rng = StdRng::seed_from_u64(80);
        let server = CircuitServer::start(key, 2);
        let (near, handle) = serve_on_thread(&server);
        let mut wire = SessionClient::connect(near).unwrap();

        let net = xor_chain(1);
        for (i, bits) in [[true, true], [true, false], [false, false]]
            .iter()
            .enumerate()
        {
            let inputs: Vec<LweCiphertext> = bits
                .iter()
                .map(|&b| client.encrypt_with(b, &mut rng))
                .collect();
            let id = wire.submit(&net, inputs).unwrap();
            assert_eq!(id, i as u64, "tickets count submissions");
            let (oid, outcome) = wire.wait().unwrap();
            assert_eq!(oid, id);
            let run = outcome.completed().expect("completed");
            assert_eq!(client.decrypt(&run.outputs[0]), bits[0] ^ bits[1]);
        }
        drop(wire);
        assert_eq!(handle.join().unwrap().unwrap(), 3);
    }

    #[test]
    fn outcome_frames_roundtrip_every_taxonomy_arm() {
        let mut s = matcha_math::TorusSampler::new(StdRng::seed_from_u64(9));
        let lwe_key = crate::secret::LweSecretKey::generate(16, &mut s);
        let out = LweCiphertext::encrypt(
            matcha_math::Torus32::from_dyadic(1, 3),
            &lwe_key,
            1e-8,
            &mut s,
        );
        let arms = vec![
            SessionOutcome::Completed(SessionRun {
                outputs: vec![out],
                waves: 3,
                scheduled_ops: 9,
                bootstraps: 7,
                elapsed_s: 0.25,
            }),
            SessionOutcome::Faulted("dimension mismatch".into()),
            SessionOutcome::Rejected(RejectReason::QueueFull),
            SessionOutcome::Rejected(RejectReason::QuotaExceeded),
            SessionOutcome::Rejected(RejectReason::DeadlineUnmeetable),
            SessionOutcome::Rejected(RejectReason::InvalidInput),
            SessionOutcome::Rejected(RejectReason::Lint {
                kind: LintKind::DeadNode,
                node: 12,
            }),
            SessionOutcome::Rejected(RejectReason::NoiseBudget {
                output: 1,
                bound: 2.5e-3,
                budget: 1e-6,
            }),
            SessionOutcome::Rejected(RejectReason::NotEquivalent {
                output: 3,
                counterexample: Counterexample::with_widths(
                    vec![
                        true, false, true, true, false, true, false, false, true, false,
                    ],
                    vec![8, 2],
                ),
            }),
            SessionOutcome::Rejected(RejectReason::NotEquivalent {
                output: 0,
                counterexample: Counterexample::with_widths(vec![], vec![]),
            }),
            SessionOutcome::Rejected(RejectReason::Shutdown),
            SessionOutcome::Expired,
            SessionOutcome::Cancelled,
        ];
        for (i, outcome) in arms.into_iter().enumerate() {
            let frame = OutcomeFrame {
                id: i as u64,
                outcome,
            };
            let back = OutcomeFrame::from_bytes(&frame.to_bytes()).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn submit_frames_roundtrip_both_kinds() {
        let mut s = matcha_math::TorusSampler::new(StdRng::seed_from_u64(10));
        let lwe_key = crate::secret::LweSecretKey::generate(16, &mut s);
        let net = xor_chain(1);
        let lwe = SubmitCircuit {
            netlist: net.clone(),
            inputs: SessionInputs::Lwe(vec![
                LweCiphertext::encrypt(matcha_math::Torus32::ZERO, &lwe_key, 1e-8, &mut s),
                LweCiphertext::encrypt(matcha_math::Torus32::ZERO, &lwe_key, 1e-8, &mut s),
            ]),
        };
        let packed = SubmitCircuit {
            netlist: net,
            inputs: SessionInputs::Packed(vec![TrlweCiphertext::from_parts(
                s.uniform_poly(32),
                s.uniform_poly(32),
            )]),
        };
        for msg in [lwe, packed] {
            let back = SubmitCircuit::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(back.inputs, msg.inputs);
            assert_eq!(back.netlist.ops(), msg.netlist.ops());
        }
    }

    #[test]
    fn oversized_frame_length_rejected_without_reading_payload() {
        let (mut a, mut b) = duplex();
        // Claim a frame bigger than the cap; send nothing else.
        write_u32(&mut a, FRAME_MAX + 1).unwrap();
        drop(a);
        let err = read_frame::<_, Ticket>(&mut b).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
