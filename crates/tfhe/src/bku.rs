//! Bootstrapping key unrolling (paper §4.2, Figures 4–6).
//!
//! Classic blind rotation multiplies the accumulator by
//! `X^{-ā_i s_i}` once per secret bit — `n` external products. BKU groups
//! `m` bits and rewrites (Figure 4's truth table, generalized):
//!
//! ```text
//! X^{-Σ_{i∈g} ā_i s_i} = 1 + Σ_{∅≠p⊆g} (X^{-Σ_{i∈p} ā_i} − 1) · Ind_p(s),
//! ```
//!
//! where `Ind_p(s) = Π_{i∈p} s_i · Π_{i∈g∖p} (1−s_i)` is the indicator that
//! the group's bits equal exactly pattern `p`. The indicators over all `2^m`
//! patterns sum to 1, which collapses the truth table into the affine form
//! above. Each group needs `2^m − 1` pre-encrypted TGSW keys (one per
//! nonempty pattern — Table 3's `(2^m − 1)·BK`), and one blind-rotation
//! step per *group*: external products drop from `n` to `⌈n/m⌉`, at the cost
//! of `2^m − 1` TGSW scale-and-add operations per step (the work MATCHA's
//! TGSW clusters absorb).

use crate::params::ParameterSet;
use crate::profile::{self, Phase};
use crate::secret::{LweSecretKey, RingSecretKey};
use crate::tgsw::{TgswCiphertext, TgswSpectrum};
use crate::tlwe::TrlweSpectrum;
use matcha_fft::FftEngine;
use matcha_math::TorusSampler;
use rand::Rng;

/// The unrolled keys for one group of `len ≤ m` secret bits:
/// `keys[p-1]` encrypts the indicator of bit pattern `p ∈ [1, 2^len)`.
#[derive(Clone, Debug)]
pub struct KeyGroup<E: FftEngine> {
    keys: Vec<TgswSpectrum<E>>,
    len: usize,
}

impl<E: FftEngine> KeyGroup<E> {
    /// Number of secret bits this group covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for an empty group (never produced by generation).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pattern keys (`2^len − 1` entries).
    pub fn keys(&self) -> &[TgswSpectrum<E>] {
        &self.keys
    }
}

/// An unrolled bootstrapping key: `⌈n/m⌉` key groups plus the gadget TGSW
/// `H` in spectral form (the `1 +` term of every bundle).
#[derive(Clone, Debug)]
pub struct UnrolledBootstrappingKey<E: FftEngine> {
    groups: Vec<KeyGroup<E>>,
    h: TgswSpectrum<E>,
    unroll: usize,
}

impl<E: FftEngine> UnrolledBootstrappingKey<E> {
    /// Encrypts the unrolled bootstrapping key: for every group of `m`
    /// bits of `lwe_key`, TGSW encryptions (under `ring_key`) of every
    /// nonempty pattern indicator.
    ///
    /// # Panics
    ///
    /// Panics if `unroll` is 0 or greater than 8 (`2^m − 1` keys per group
    /// grow exponentially; the paper stops at `m = 4`).
    pub fn generate<R: Rng>(
        lwe_key: &LweSecretKey,
        ring_key: &RingSecretKey,
        params: &ParameterSet,
        engine: &E,
        unroll: usize,
        sampler: &mut TorusSampler<R>,
    ) -> Self {
        assert!(
            (1..=8).contains(&unroll),
            "unroll factor {unroll} outside 1..=8"
        );
        let n = lwe_key.dimension();
        let mut groups = Vec::with_capacity(n.div_ceil(unroll));
        let bits = lwe_key.bits();
        let mut start = 0;
        while start < n {
            let len = unroll.min(n - start);
            let group_bits = &bits[start..start + len];
            let mut keys = Vec::with_capacity((1 << len) - 1);
            for pattern in 1u32..(1 << len) {
                let indicator = group_bits.iter().enumerate().all(|(i, &s)| {
                    let want = (pattern >> i) & 1 == 1;
                    s == want
                });
                keys.push(
                    TgswCiphertext::encrypt_constant(
                        i32::from(indicator),
                        ring_key,
                        params,
                        engine,
                        sampler,
                    )
                    .to_spectrum(engine),
                );
            }
            groups.push(KeyGroup { keys, len });
            start += len;
        }
        Self {
            groups,
            h: TgswCiphertext::trivial_one(params).to_spectrum(engine),
            unroll,
        }
    }

    /// The unroll factor `m`.
    pub fn unroll(&self) -> usize {
        self.unroll
    }

    /// The key groups, in secret-bit order.
    pub fn groups(&self) -> &[KeyGroup<E>] {
        &self.groups
    }

    /// Total TGSW ciphertexts stored — `⌈n/m⌉·(2^m − 1)`, the exponential
    /// key blow-up of Table 3.
    pub fn key_count(&self) -> usize {
        self.groups.iter().map(|g| g.keys.len()).sum()
    }

    /// The gadget TGSW `H` in spectral form (the `1 +` term of every
    /// bundle) — also the shape template for bundle scratch buffers.
    pub(crate) fn gadget_spectrum(&self) -> &TgswSpectrum<E> {
        &self.h
    }

    /// Builds the bootstrapping-key bundle for one group (Figure 5):
    ///
    /// `BKB = H + Σ_{p≠0} (X^{-⟨ā, p⟩} − 1) · K_p`,
    ///
    /// evaluated entirely in the Lagrange domain with TGSW scale operations
    /// — no FFTs. `exponents[i]` is the mod-switched `ā` of the group's
    /// `i`-th secret bit.
    ///
    /// # Panics
    ///
    /// Panics if `exponents.len()` differs from the group length.
    pub fn build_bundle(
        &self,
        engine: &E,
        group: &KeyGroup<E>,
        exponents: &[u32],
        two_n: u32,
    ) -> TgswSpectrum<E> {
        assert_eq!(
            exponents.len(),
            group.len,
            "one exponent per grouped secret bit"
        );
        profile::timed(Phase::TgswScale, || {
            let rows = self
                .h
                .rows()
                .iter()
                .enumerate()
                .map(|(r, h_row)| {
                    let mut acc_a = engine.bundle_accumulator(&h_row.a);
                    let mut acc_b = engine.bundle_accumulator(&h_row.b);
                    for pattern in 1u32..(1 << group.len) {
                        let Some(e) = pattern_exponent(pattern, exponents, two_n) else {
                            continue;
                        };
                        let key_row = &group.keys[pattern as usize - 1].rows()[r];
                        engine.scale_monomial_accumulate(&mut acc_a, &key_row.a, e);
                        engine.scale_monomial_accumulate(&mut acc_b, &key_row.b, e);
                    }
                    TrlweSpectrum { a: acc_a, b: acc_b }
                })
                .collect();
            TgswSpectrum::from_rows(rows, self.h.levels())
        })
    }

    /// [`Self::build_bundle`] into a caller-owned bundle — the
    /// zero-allocation form, with two structural optimizations over the
    /// allocating path:
    ///
    /// * the factor table `ε^e − 1` is computed **once per pattern** and
    ///   shared across all `2ℓ` rows (the allocating path recomputes it
    ///   `2·2ℓ` times per pattern), and
    /// * each row's mask/body pair is updated in one fused pass.
    ///
    /// Both changes are exact reorderings: the result is bit-identical to
    /// [`Self::build_bundle`].
    ///
    /// # Panics
    ///
    /// Panics if `exponents.len()` differs from the group length or the
    /// bundle buffer has the wrong shape.
    pub fn build_bundle_into(
        &self,
        engine: &E,
        group: &KeyGroup<E>,
        exponents: &[u32],
        two_n: u32,
        bundle: &mut TgswSpectrum<E>,
        factors: &mut E::MonomialFactors,
    ) {
        assert_eq!(
            exponents.len(),
            group.len,
            "one exponent per grouped secret bit"
        );
        assert_eq!(
            bundle.rows().len(),
            self.h.rows().len(),
            "bundle buffer has the wrong row count"
        );
        profile::timed(Phase::TgswScale, || {
            let rows = bundle.rows_mut();
            for (row, h_row) in rows.iter_mut().zip(self.h.rows().iter()) {
                engine.bundle_accumulator_into(&h_row.a, &mut row.a);
                engine.bundle_accumulator_into(&h_row.b, &mut row.b);
            }
            for pattern in 1u32..(1 << group.len) {
                let Some(e) = pattern_exponent(pattern, exponents, two_n) else {
                    continue;
                };
                engine.monomial_minus_one_into(e, factors);
                let key = &group.keys[pattern as usize - 1];
                for (row, key_row) in rows.iter_mut().zip(key.rows().iter()) {
                    engine.scale_accumulate_pair(
                        &mut row.a, &mut row.b, &key_row.a, &key_row.b, factors,
                    );
                }
            }
        })
    }
}

/// The bundle exponent `-⟨ā, p⟩ mod 2N` of a bit pattern, or `None` when
/// the term vanishes (`X^0 − 1 = 0`).
fn pattern_exponent(pattern: u32, exponents: &[u32], two_n: u32) -> Option<i64> {
    let mut e: i64 = 0;
    for (i, &a) in exponents.iter().enumerate() {
        if (pattern >> i) & 1 == 1 {
            e -= a as i64;
        }
    }
    let e = e.rem_euclid(two_n as i64);
    if e == 0 {
        None
    } else {
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlwe::TrlweCiphertext;
    use matcha_fft::F64Fft;
    use matcha_math::{GadgetDecomposer, Torus32, TorusPolynomial};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        unroll: usize,
        n_lwe: usize,
    ) -> (
        ParameterSet,
        LweSecretKey,
        RingSecretKey,
        F64Fft,
        UnrolledBootstrappingKey<F64Fft>,
        TorusSampler<StdRng>,
    ) {
        let p = ParameterSet {
            ring_degree: 64,
            lwe_dimension: n_lwe,
            ..ParameterSet::TEST_FAST
        };
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(37 + unroll as u64));
        let lwe_key = LweSecretKey::generate(n_lwe, &mut sampler);
        let ring_key = RingSecretKey::generate(p.ring_degree, &mut sampler);
        let engine = F64Fft::new(p.ring_degree);
        let bk = UnrolledBootstrappingKey::generate(
            &lwe_key,
            &ring_key,
            &p,
            &engine,
            unroll,
            &mut sampler,
        );
        (p, lwe_key, ring_key, engine, bk, sampler)
    }

    #[test]
    fn key_counts_follow_formula() {
        for (m, n, expected) in [(1usize, 6usize, 6usize), (2, 6, 9), (3, 6, 14), (2, 5, 7)] {
            let (_, _, _, _, bk, _) = setup(m, n);
            assert_eq!(bk.key_count(), expected, "m={m} n={n}");
            assert_eq!(bk.groups().len(), n.div_ceil(m));
        }
    }

    #[test]
    fn remainder_group_is_shorter() {
        let (_, _, _, _, bk, _) = setup(4, 6);
        assert_eq!(bk.groups()[0].len(), 4);
        assert_eq!(bk.groups()[1].len(), 2);
        assert_eq!(bk.groups()[1].keys().len(), 3);
    }

    /// The heart of BKU: applying a bundle to an accumulator must multiply
    /// its message by exactly `X^{-Σ ā_i s_i}`.
    #[test]
    fn bundle_external_product_rotates_by_group_phase() {
        for m in 1..=3usize {
            let (p, lwe_key, ring_key, engine, bk, mut sampler) = setup(m, 6);
            let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
            let two_n = p.two_n();
            let msg = TorusPolynomial::constant(Torus32::from_f64(0.25), p.ring_degree);
            let acc = TrlweCiphertext::encrypt(
                &msg,
                &ring_key,
                p.ring_noise_stdev,
                &engine,
                &mut sampler,
            );

            let group = &bk.groups()[0];
            let exponents: Vec<u32> = (0..group.len()).map(|i| (7 + 13 * i) as u32).collect();
            let bundle = bk.build_bundle(&engine, group, &exponents, two_n);
            let out = bundle.external_product(&engine, &acc, &decomp);

            // Expected rotation: -Σ ā_i s_i over the group's true key bits.
            let mut shift: i64 = 0;
            for (i, &e) in exponents.iter().enumerate() {
                if lwe_key.bits()[i] {
                    shift -= e as i64;
                }
            }
            let expected = msg.mul_by_monomial(shift);
            let dist = out.phase(&ring_key, &engine).max_distance(&expected);
            assert!(dist < 5e-3, "m={m}: distance {dist}");
        }
    }

    #[test]
    fn zero_exponents_yield_identity_bundle() {
        let (p, _, ring_key, engine, bk, mut sampler) = setup(2, 4);
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let msg = TorusPolynomial::constant(Torus32::from_f64(0.125), p.ring_degree);
        let acc =
            TrlweCiphertext::encrypt(&msg, &ring_key, p.ring_noise_stdev, &engine, &mut sampler);
        let bundle = bk.build_bundle(&engine, &bk.groups()[0], &[0, 0], p.two_n());
        let out = bundle.external_product(&engine, &acc, &decomp);
        assert!(out.phase(&ring_key, &engine).max_distance(&msg) < 5e-3);
    }

    #[test]
    fn indicator_keys_are_one_hot() {
        // Exactly one pattern key per group should encrypt 1 (the pattern
        // matching the true bits) unless the group bits are all zero.
        let (p, lwe_key, ring_key, engine, bk, _) = setup(2, 6);
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(99));
        let probe = TrlweCiphertext::encrypt(
            &TorusPolynomial::constant(Torus32::from_f64(0.25), p.ring_degree),
            &ring_key,
            p.ring_noise_stdev,
            &engine,
            &mut sampler,
        );
        for (g, group) in bk.groups().iter().enumerate() {
            let bits = &lwe_key.bits()[2 * g..2 * g + group.len()];
            let true_pattern: u32 = bits
                .iter()
                .enumerate()
                .map(|(i, &b)| u32::from(b) << i)
                .sum();
            for pattern in 1u32..(1 << group.len()) {
                let out =
                    group.keys()[pattern as usize - 1].external_product(&engine, &probe, &decomp);
                let phase = out.phase(&ring_key, &engine);
                let expect = if pattern == true_pattern {
                    probe.phase(&ring_key, &engine)
                } else {
                    TorusPolynomial::zero(p.ring_degree)
                };
                assert!(
                    phase.max_distance(&expect) < 5e-3,
                    "group {g} pattern {pattern:b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn zero_unroll_rejected() {
        let p = ParameterSet {
            ring_degree: 64,
            lwe_dimension: 4,
            ..ParameterSet::TEST_FAST
        };
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(1));
        let lwe_key = LweSecretKey::generate(4, &mut sampler);
        let ring_key = RingSecretKey::generate(64, &mut sampler);
        let engine = F64Fft::new(64);
        let _ =
            UnrolledBootstrappingKey::generate(&lwe_key, &ring_key, &p, &engine, 0, &mut sampler);
    }
}
