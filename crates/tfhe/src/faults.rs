//! Deterministic fault injection for the serving stack.
//!
//! The robustness guarantees of [`GateBatchPool`](crate::batch::GateBatchPool)
//! and [`CircuitServer`](crate::server::CircuitServer) — per-task panic
//! isolation, worker self-healing, deadline expiry mid-flight — are only
//! worth claiming if they are *pinned by deterministic tests*, not by
//! hoping a timing-dependent stress run happens to hit the failure path.
//! A [`FaultPlan`] scripts faults at exact `(circuit, node)` points: when
//! a pool worker picks up the task computing node `node` of the circuit
//! tagged `circuit` (see [`ValueSlab::tagged`](crate::batch::ValueSlab::tagged)),
//! the planned [`FaultAction`] fires — once — regardless of which worker
//! got the task or how the batch was interleaved. That makes "the worker
//! died mid-batch" or "this wave took 500 ms" reproducible statements a
//! test can schedule around.
//!
//! The module is compiled unconditionally (no test-only `cfg` — the types
//! appear in public constructors like
//! [`GateBatchPool::with_faults`](crate::batch::GateBatchPool::with_faults)
//! and [`CircuitServer::start_with_faults`](crate::server::CircuitServer::start_with_faults)),
//! but a pool built without a plan pays a single `Option` check per task.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// What happens when a scripted fault site is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The task panics inside the worker's per-task `catch_unwind` — the
    /// shape of a malformed operand or a bug in a gate kernel. The worker
    /// survives; the task is reported failed and faults its circuit.
    Panic,
    /// The task takes an extra `Duration` of wall-clock before executing
    /// (and then completes normally) — the shape of a wedged allocator,
    /// page-fault storm or noisy neighbor. Used to make deadline and
    /// cancellation windows deterministic.
    Delay(Duration),
    /// The worker thread exits *without* executing or answering the task —
    /// death outside the per-task `catch_unwind` (a stack overflow, an
    /// abort in foreign code, an OS kill). The pool must detect the lost
    /// reply, respawn the worker, and retry the task.
    KillWorker,
}

/// A scripted set of one-shot fault sites, keyed by `(circuit, node)`.
///
/// `circuit` is the tag of the [`ValueSlab`](crate::batch::ValueSlab) the
/// task reads from — the [`CircuitServer`](crate::server::CircuitServer)
/// tags each admitted circuit with its admission sequence number (0, 1,
/// 2, … in queue order), and standalone slabs default to tag 0. `node` is
/// the slot the task writes. Each site fires at most once: the action is
/// *consumed* when triggered, so a task retried after a
/// [`FaultAction::KillWorker`] runs clean.
///
/// # Examples
///
/// ```
/// use matcha_tfhe::faults::{FaultAction, FaultPlan};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .inject(0, 2, FaultAction::Delay(Duration::from_millis(50)))
///     .inject(1, 4, FaultAction::KillWorker);
/// assert_eq!(plan.remaining(), 2);
/// assert_eq!(plan.take(1, 4), Some(FaultAction::KillWorker));
/// assert_eq!(plan.take(1, 4), None, "sites fire once");
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    sites: Mutex<HashMap<(u64, usize), FaultAction>>,
}

impl FaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault site: when the task computing `node` of the circuit
    /// tagged `circuit` is picked up by a worker, `action` fires. Builder
    /// style; later injections at the same site replace earlier ones.
    pub fn inject(self, circuit: u64, node: usize, action: FaultAction) -> Self {
        self.sites
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((circuit, node), action);
        self
    }

    /// Consumes and returns the action scripted for `(circuit, node)`, if
    /// any. Called by pool workers as they pick up each task; the site is
    /// removed so it fires exactly once.
    pub fn take(&self, circuit: u64, node: usize) -> Option<FaultAction> {
        self.sites
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&(circuit, node))
    }

    /// Number of sites that have not fired yet.
    pub fn remaining(&self) -> usize {
        self.sites
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when every scripted site has fired (or none was scripted).
    pub fn is_spent(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_fire_exactly_once_and_by_key() {
        let plan = FaultPlan::new().inject(3, 7, FaultAction::Panic).inject(
            3,
            8,
            FaultAction::Delay(Duration::from_millis(1)),
        );
        assert_eq!(plan.remaining(), 2);
        assert!(!plan.is_spent());
        assert_eq!(plan.take(3, 9), None, "unscripted site");
        assert_eq!(plan.take(4, 7), None, "wrong circuit");
        assert_eq!(plan.take(3, 7), Some(FaultAction::Panic));
        assert_eq!(plan.take(3, 7), None, "consumed");
        assert_eq!(
            plan.take(3, 8),
            Some(FaultAction::Delay(Duration::from_millis(1)))
        );
        assert!(plan.is_spent());
    }

    #[test]
    fn later_injections_replace_earlier_ones() {
        let plan =
            FaultPlan::new()
                .inject(0, 0, FaultAction::Panic)
                .inject(0, 0, FaultAction::KillWorker);
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.take(0, 0), Some(FaultAction::KillWorker));
    }
}
