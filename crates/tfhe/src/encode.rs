//! Multi-bit message encoding for programmable bootstrapping.
//!
//! Boolean gates use the two plaintexts `±1/8`; programmable bootstrapping
//! ([`crate::pbs`]) supports richer message spaces. The standard encoding
//! places `2^bits` buckets on the *positive half* of the torus (phases in
//! `(0, 1/2)`), centered at `(2k+1)/2^{bits+2}`, so that a blind rotation
//! never crosses the negacyclic boundary and every bucket enjoys the same
//! noise margin `1/2^{bits+2}`.

use crate::lwe::LweCiphertext;
use crate::pbs::Lut;
use crate::secret::ClientKey;
use matcha_math::{Torus32, TorusSampler};
use rand::Rng;

/// A `2^bits`-bucket message space on the half circle.
///
/// # Examples
///
/// ```
/// use matcha_tfhe::encode::BucketEncoding;
///
/// let enc = BucketEncoding::new(2); // messages 0..4
/// let phase = enc.phase_of(3);
/// assert_eq!(enc.decode_phase(phase), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketEncoding {
    bits: u32,
}

impl BucketEncoding {
    /// Creates the encoding with `2^bits` messages.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8.
    pub fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "bucket bits {bits} outside 1..=8");
        Self { bits }
    }

    /// Number of messages `2^bits`.
    pub fn message_count(&self) -> u32 {
        1 << self.bits
    }

    /// Message bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The phase encoding message `msg`: `(2·msg + 1)/2^{bits+2}`.
    ///
    /// # Panics
    ///
    /// Panics if `msg ≥ 2^bits`.
    pub fn phase_of(&self, msg: u32) -> Torus32 {
        assert!(msg < self.message_count(), "message {msg} out of range");
        Torus32::from_dyadic((2 * msg + 1) as i64, self.bits + 2)
    }

    /// Half the bucket spacing: the noise magnitude that still decodes
    /// correctly.
    pub fn noise_margin(&self) -> f64 {
        0.5 / (1u64 << (self.bits + 2)) as f64
    }

    /// Decodes a phase back to the nearest message bucket.
    ///
    /// Phases outside the positive half circle clamp to the nearest edge
    /// bucket (they indicate a protocol error upstream).
    pub fn decode_phase(&self, phase: Torus32) -> u32 {
        let x = phase.to_f64();
        let buckets = self.message_count() as f64;
        let idx = (x * 2.0 * buckets - 0.5).round();
        idx.clamp(0.0, buckets - 1.0) as u32
    }

    /// Encrypts a bucket message under the client's LWE key.
    ///
    /// # Panics
    ///
    /// Panics if `msg ≥ 2^bits`.
    pub fn encrypt<R: Rng>(&self, client: &ClientKey, msg: u32, rng: &mut R) -> LweCiphertext {
        let mut sampler = TorusSampler::new(rng);
        LweCiphertext::encrypt(
            self.phase_of(msg),
            client.lwe_key(),
            client.params().lwe_noise_stdev,
            &mut sampler,
        )
    }

    /// Decrypts a bucket message.
    pub fn decrypt(&self, client: &ClientKey, c: &LweCiphertext) -> u32 {
        self.decode_phase(c.phase(client.lwe_key()))
    }

    /// Builds a LUT evaluating `f: bucket → bucket` under this encoding:
    /// the bootstrapped output is a fresh encryption of `f(msg)`.
    ///
    /// # Panics
    ///
    /// Panics if the bucket space exceeds the ring degree or `f` returns
    /// an out-of-range message.
    pub fn lut(&self, ring_degree: usize, f: impl Fn(u32) -> u32) -> Lut {
        let count = self.message_count();
        Lut::from_bucket_fn(ring_degree, self.bits, |k| {
            let out = f(k);
            assert!(out < count, "LUT output {out} out of range");
            self.phase_of(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapKit;
    use crate::params::ParameterSet;
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phase_roundtrip_all_messages() {
        for bits in 1..=4u32 {
            let enc = BucketEncoding::new(bits);
            for msg in 0..enc.message_count() {
                assert_eq!(
                    enc.decode_phase(enc.phase_of(msg)),
                    msg,
                    "bits={bits} msg={msg}"
                );
            }
        }
    }

    #[test]
    fn phases_sit_on_the_half_circle() {
        let enc = BucketEncoding::new(3);
        for msg in 0..8 {
            let x = enc.phase_of(msg).to_f64();
            assert!(x > 0.0 && x < 0.5, "phase {x} off the half circle");
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(61);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let enc = BucketEncoding::new(2);
        for msg in 0..4 {
            let c = enc.encrypt(&client, msg, &mut rng);
            assert_eq!(enc.decrypt(&client, &c), msg);
        }
    }

    #[test]
    fn homomorphic_bucket_function() {
        // Evaluate f(x) = 3 − x on encrypted 2-bit messages via PBS.
        let mut rng = StdRng::seed_from_u64(62);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(256);
        let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
        let enc = BucketEncoding::new(2);
        let lut = enc.lut(256, |x| 3 - x);
        for msg in 0..4 {
            let c = enc.encrypt(&client, msg, &mut rng);
            let out = kit.bootstrap_with_lut(&engine, &c, &lut);
            assert_eq!(enc.decrypt(&client, &out), 3 - msg, "msg={msg}");
        }
    }

    #[test]
    fn homomorphic_increment_mod_4() {
        let mut rng = StdRng::seed_from_u64(63);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(256);
        let kit = BootstrapKit::generate(&client, &engine, 1, &mut rng);
        let enc = BucketEncoding::new(2);
        let lut = enc.lut(256, |x| (x + 1) % 4);
        // Chain two PBS evaluations: the output encoding feeds back in.
        let c0 = enc.encrypt(&client, 1, &mut rng);
        let c1 = kit.bootstrap_with_lut(&engine, &c0, &lut);
        let c2 = kit.bootstrap_with_lut(&engine, &c1, &lut);
        assert_eq!(enc.decrypt(&client, &c2), 3);
    }

    #[test]
    fn noise_margin_formula() {
        assert!((BucketEncoding::new(1).noise_margin() - 1.0 / 16.0).abs() < 1e-12);
        assert!((BucketEncoding::new(3).noise_margin() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_message_rejected() {
        let enc = BucketEncoding::new(2);
        let _ = enc.phase_of(4);
    }
}
