//! TRLWE (ring) ciphertexts: `(a, b) ∈ T_N[X] × T_N[X]` with
//! `b = s″·a + μ + e` and the TLWE dimension fixed to `k = 1` as in the
//! paper (§2, "the TLWE sample is simply the Ring-LWE sample").

use crate::lwe::LweCiphertext;
use crate::secret::RingSecretKey;
use matcha_fft::FftEngine;
use matcha_math::{TorusPolynomial, TorusSampler};
use rand::Rng;

/// A TRLWE ciphertext over `T_N[X]` with `k = 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrlweCiphertext {
    a: TorusPolynomial,
    b: TorusPolynomial,
}

impl TrlweCiphertext {
    /// Encrypts a polynomial message under `key` with noise stdev `noise`.
    ///
    /// The `s″·a` product runs through `engine`, so key generation uses the
    /// same FFT kernel as the online phase.
    pub fn encrypt<E: FftEngine, R: Rng>(
        mu: &TorusPolynomial,
        key: &RingSecretKey,
        noise: f64,
        engine: &E,
        sampler: &mut TorusSampler<R>,
    ) -> Self {
        let n = key.ring_degree();
        debug_assert_eq!(mu.len(), n);
        let a = sampler.uniform_poly(n);
        let mut b = engine.poly_mul(&a, key.as_poly());
        b += mu;
        b += &sampler.gaussian_poly(n, noise);
        Self { a, b }
    }

    /// The noiseless, keyless encryption `(0, μ)`.
    pub fn trivial(mu: TorusPolynomial) -> Self {
        let n = mu.len();
        Self {
            a: TorusPolynomial::zero(n),
            b: mu,
        }
    }

    /// Builds a ciphertext from raw parts.
    pub fn from_parts(a: TorusPolynomial, b: TorusPolynomial) -> Self {
        debug_assert_eq!(a.len(), b.len());
        Self { a, b }
    }

    /// The zero ciphertext `(0, 0)` — a scratch-buffer seed.
    pub fn zero(n: usize) -> Self {
        Self {
            a: TorusPolynomial::zero(n),
            b: TorusPolynomial::zero(n),
        }
    }

    /// Ring degree `N`.
    pub fn ring_degree(&self) -> usize {
        self.a.len()
    }

    /// The mask polynomial `a`.
    pub fn mask(&self) -> &TorusPolynomial {
        &self.a
    }

    /// The body polynomial `b`.
    pub fn body(&self) -> &TorusPolynomial {
        &self.b
    }

    /// Mutable access to the mask polynomial (in-place pipelines).
    pub fn mask_mut(&mut self) -> &mut TorusPolynomial {
        &mut self.a
    }

    /// Mutable access to the body polynomial (in-place pipelines).
    pub fn body_mut(&mut self) -> &mut TorusPolynomial {
        &mut self.b
    }

    /// Both polynomials mutably (for split borrows in the hot path).
    pub fn parts_mut(&mut self) -> (&mut TorusPolynomial, &mut TorusPolynomial) {
        (&mut self.a, &mut self.b)
    }

    /// Copies `other` into `self` without allocating once capacity exists.
    pub fn copy_from(&mut self, other: &Self) {
        self.a.copy_from(&other.a);
        self.b.copy_from(&other.b);
    }

    /// The phase `b − s″·a = μ + e`.
    pub fn phase<E: FftEngine>(&self, key: &RingSecretKey, engine: &E) -> TorusPolynomial {
        let sa = engine.poly_mul(&self.a, key.as_poly());
        self.b.clone() - &sa
    }

    /// Multiplies the ciphertext (and its message) by the monomial
    /// `X^power` — noise-free, used by blind rotation.
    pub fn rotate(&self, power: i64) -> Self {
        Self {
            a: self.a.mul_by_monomial(power),
            b: self.b.mul_by_monomial(power),
        }
    }

    /// In-place homomorphic addition.
    pub fn add_assign(&mut self, other: &Self) {
        self.a += &other.a;
        self.b += &other.b;
    }

    /// In-place homomorphic subtraction.
    pub fn sub_assign(&mut self, other: &Self) {
        self.a -= &other.a;
        self.b -= &other.b;
    }

    /// `SampleExtract` at index 0: the LWE encryption (under the extracted
    /// key `s′ = KeyExtract(s″)`) of the constant coefficient of the
    /// message polynomial.
    pub fn sample_extract(&self) -> LweCiphertext {
        self.sample_extract_at(0)
    }

    /// `SampleExtract` at an arbitrary coefficient index: the LWE
    /// encryption (under the extracted key) of coefficient `index` of the
    /// message polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ N`.
    pub fn sample_extract_at(&self, index: usize) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(self.b.coeffs()[index], self.ring_degree());
        self.sample_extract_at_into(index, &mut out);
        out
    }

    /// [`Self::sample_extract_at`] into a caller-owned ciphertext — no
    /// allocation once `out` has dimension `N`.
    pub fn sample_extract_at_into(&self, index: usize, out: &mut LweCiphertext) {
        let n = self.ring_degree();
        assert!(index < n, "coefficient index {index} out of range");
        let ac = self.a.coeffs();
        let (mask, body) = out.parts_mut();
        mask.clear();
        mask.reserve(n);
        // (a·s)_index = Σ_{j≤index} a_{index−j}·s_j − Σ_{j>index} a_{N+index−j}·s_j.
        for j in 0..n {
            if j <= index {
                mask.push(ac[index - j]);
            } else {
                mask.push(-ac[n + index - j]);
            }
        }
        *body = self.b.coeffs()[index];
    }

    /// `SampleExtract` at index 0 into a caller-owned ciphertext.
    pub fn sample_extract_into(&self, out: &mut LweCiphertext) {
        self.sample_extract_at_into(0, out);
    }

    /// The spectral (Lagrange-domain) form of this ciphertext.
    pub fn to_spectrum<E: FftEngine>(&self, engine: &E) -> TrlweSpectrum<E> {
        TrlweSpectrum {
            a: engine.forward_torus(&self.a),
            b: engine.forward_torus(&self.b),
        }
    }
}

/// A TRLWE ciphertext in the Lagrange half-complex domain.
#[derive(Debug)]
pub struct TrlweSpectrum<E: FftEngine> {
    /// Spectrum of the mask polynomial.
    pub a: E::Spectrum,
    /// Spectrum of the body polynomial.
    pub b: E::Spectrum,
}

// Manual impl: spectra are always `Clone`, the engine need not be (the
// derive would demand `E: Clone`, excluding counter-carrying engines).
impl<E: FftEngine> Clone for TrlweSpectrum<E> {
    fn clone(&self) -> Self {
        Self {
            a: self.a.clone(),
            b: self.b.clone(),
        }
    }
}

impl<E: FftEngine> TrlweSpectrum<E> {
    /// Transforms back to the coefficient domain.
    pub fn to_ciphertext(&self, engine: &E) -> TrlweCiphertext {
        TrlweCiphertext {
            a: engine.backward_torus(&self.a),
            b: engine.backward_torus(&self.b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_fft::F64Fft;
    use matcha_math::Torus32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 64;

    fn setup() -> (RingSecretKey, F64Fft, TorusSampler<StdRng>) {
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(5));
        let key = RingSecretKey::generate(N, &mut sampler);
        (key, F64Fft::new(N), sampler)
    }

    fn message(seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..N as u32)
                .map(|i| Torus32::from_dyadic(((i ^ seed) % 8) as i64, 3))
                .collect(),
        )
    }

    #[test]
    fn encrypt_phase_recovers_message() {
        let (key, engine, mut sampler) = setup();
        let mu = message(3);
        let c = TrlweCiphertext::encrypt(&mu, &key, 1e-9, &engine, &mut sampler);
        let phase = c.phase(&key, &engine);
        assert!(phase.max_distance(&mu) < 1e-4);
    }

    #[test]
    fn trivial_phase_is_exact_message() {
        let (key, engine, _) = setup();
        let mu = message(1);
        let c = TrlweCiphertext::trivial(mu.clone());
        assert!(c.phase(&key, &engine).max_distance(&mu) < 1e-7);
    }

    #[test]
    fn rotation_rotates_message() {
        let (key, engine, mut sampler) = setup();
        let mu = message(7);
        let c = TrlweCiphertext::encrypt(&mu, &key, 1e-9, &engine, &mut sampler);
        let rotated = c.rotate(5);
        let expected = mu.mul_by_monomial(5);
        assert!(rotated.phase(&key, &engine).max_distance(&expected) < 1e-4);
    }

    #[test]
    fn addition_adds_messages() {
        let (key, engine, mut sampler) = setup();
        let (m1, m2) = (message(2), message(9));
        let mut c1 = TrlweCiphertext::encrypt(&m1, &key, 1e-9, &engine, &mut sampler);
        let c2 = TrlweCiphertext::encrypt(&m2, &key, 1e-9, &engine, &mut sampler);
        c1.add_assign(&c2);
        let expected = m1 + &m2;
        assert!(c1.phase(&key, &engine).max_distance(&expected) < 1e-4);
    }

    #[test]
    fn sample_extract_gets_constant_coefficient() {
        let (key, engine, mut sampler) = setup();
        let mu = message(4);
        let c = TrlweCiphertext::encrypt(&mu, &key, 1e-9, &engine, &mut sampler);
        let lwe = c.sample_extract();
        let extracted_key = key.extract_lwe_key();
        let phase = lwe.phase(&extracted_key);
        assert!(phase.signed_diff(mu.coeffs()[0]).abs() < 1e-4);
    }

    #[test]
    fn spectrum_roundtrip() {
        let (key, engine, mut sampler) = setup();
        let mu = message(8);
        let c = TrlweCiphertext::encrypt(&mu, &key, 1e-9, &engine, &mut sampler);
        let back = c.to_spectrum(&engine).to_ciphertext(&engine);
        assert!(back.mask().max_distance(c.mask()) < 1e-6);
        assert!(back.body().max_distance(c.body()) < 1e-6);
    }
}
