//! Formal combinational equivalence checking for [`CircuitNetlist`]s on a
//! small reduced-ordered BDD engine — the proof layer every netlist
//! rewrite (today's [`simplify`](super::simplify), tomorrow's multi-input
//! gate fusion) must pass through before the server schedules its output.
//!
//! # BDD representation
//!
//! Functions are reduced ordered binary decision diagrams with
//! **complement edges**: a [`BddRef`] packs a node index and a negation
//! bit, so `NOT` is free (flip the bit) and a function and its complement
//! share every node. Canonical form is enforced structurally:
//!
//! * no node has identical children (`mk` returns the child instead),
//! * the *then* edge of every stored node is regular (never complemented) —
//!   `mk` pushes the complement outward — so each function has exactly one
//!   representation,
//! * a **unique table** interns `(var, then, else)` triples, making
//!   equivalence checking a pointer comparison: two netlist outputs compute
//!   the same Boolean function **iff** they compile to the same [`BddRef`].
//!
//! All Boolean structure is built through a single memoized [`ite`]
//! (if-then-else) operator with the standard terminal rules and
//! complement-edge normalizations, so the op-cache is shared across all
//! ten binary gates and the mux.
//!
//! # Variable order
//!
//! The order is static (no sifting), derived from the netlist's
//! topological levels: inputs are ordered by the level of the earliest
//! gate that consumes them, tie-broken by that gate's position and then by
//! input slot. For word-level lowerings this interleaves the operand
//! words the way their bits actually meet (e.g. `a0,b0,a1,b1,…` for a
//! ripple adder, where the carry chain keeps BDDs linear-sized), without
//! the caller declaring word boundaries.
//!
//! # Budget semantics
//!
//! BDD sizes are worst-case exponential, and remote netlists are
//! adversarial, so every check runs under an [`EquivBudget`]: a cap on
//! unique-table nodes and on input count. Exceeding either cap **degrades
//! to [`Verdict::Unknown`]** — never a panic, never unbounded memory — and
//! admission policies treat `Unknown` as a [`Severity::Warning`]-level
//! finding ([`LintKind::EquivUnknown`]): strict servers reject it, default
//! servers admit the *submitted* netlist (an unproven rewrite is never
//! scheduled).
//!
//! [`Severity::Warning`]: super::Severity::Warning
//! [`LintKind::EquivUnknown`]: super::LintKind::EquivUnknown

use crate::circuit::{CircuitNetlist, GateOp};
use crate::gates::Gate;
use std::collections::HashMap;
use std::fmt;

/// Cost caps for one equivalence check. Exceeding either cap makes the
/// check return [`Verdict::Unknown`] instead of growing without bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EquivBudget {
    /// Maximum unique-table nodes across the whole check (both netlists
    /// share one table). Each node is a `(var, then, else)` triple.
    pub max_nodes: usize,
    /// Maximum number of netlist inputs (BDD variables). Checks over more
    /// inputs than this are refused up front.
    pub max_inputs: usize,
}

impl Default for EquivBudget {
    /// 2²⁰ nodes and 64 inputs: every shipped library lowering (including
    /// the 8×8 schoolbook multiplier and a full processor cycle) verifies
    /// well inside this, while an adversarial netlist is cut off around
    /// tens of megabytes of table.
    fn default() -> Self {
        Self {
            max_nodes: 1 << 20,
            max_inputs: 64,
        }
    }
}

/// Why a check came back [`Verdict::Unknown`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// The unique table hit [`EquivBudget::max_nodes`].
    NodeBudget {
        /// The cap that was hit.
        max_nodes: usize,
    },
    /// The netlists have more inputs than [`EquivBudget::max_inputs`].
    InputBudget {
        /// The netlists' input count.
        inputs: usize,
        /// The cap it exceeded.
        max_inputs: usize,
    },
    /// The two sides are not comparable per-output: their input or output
    /// counts differ, so "same function per output" is not even
    /// well-posed.
    ShapeMismatch {
        /// `(left, right)` input counts.
        inputs: (usize, usize),
        /// `(left, right)` output counts.
        outputs: (usize, usize),
    },
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::NodeBudget { max_nodes } => {
                write!(f, "BDD node budget of {max_nodes} exhausted")
            }
            UnknownReason::InputBudget { inputs, max_inputs } => {
                write!(f, "{inputs} inputs exceed the budget of {max_inputs}")
            }
            UnknownReason::ShapeMismatch { inputs, outputs } => write!(
                f,
                "shapes are not comparable: {} vs {} inputs, {} vs {} outputs",
                inputs.0, inputs.1, outputs.0, outputs.1
            ),
        }
    }
}

/// A concrete input assignment distinguishing two netlists, in netlist
/// input-slot order, with a word partition for human-readable rendering.
///
/// `Display` renders the assignment as per-input-word hex —
/// `in[0]=0x3a in[1]=0x07` — with bits LSB-first inside each word
/// (the word convention of every `circuits::netlist` lowering). When the
/// word structure is unknown (e.g. a remote netlist at admission), the
/// partition defaults to bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// One bit per netlist input slot.
    pub bits: Vec<bool>,
    /// Word widths partitioning `bits` (each `1..=128`, summing to
    /// `bits.len()`), used only for rendering.
    pub widths: Vec<u8>,
}

/// The widest word [`Counterexample`] rendering supports (a `u128`).
pub const MAX_WORD_WIDTH: usize = 128;

/// Splits `n` bits into byte-sized words with a trailing remainder — the
/// rendering fallback when no word structure is known.
fn byte_partition(n: usize) -> Vec<u8> {
    let mut widths = vec![8u8; n / 8];
    if !n.is_multiple_of(8) {
        widths.push((n % 8) as u8);
    }
    widths
}

impl Counterexample {
    /// Wraps an assignment with the default byte partition.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        let widths = byte_partition(bits.len());
        Self { bits, widths }
    }

    /// Wraps an assignment with an explicit word partition.
    ///
    /// # Panics
    ///
    /// Panics unless every width is `1..=MAX_WORD_WIDTH` and the widths
    /// sum to `bits.len()`.
    pub fn with_widths(bits: Vec<bool>, widths: Vec<u8>) -> Self {
        assert!(
            widths
                .iter()
                .all(|&w| w >= 1 && (w as usize) <= MAX_WORD_WIDTH),
            "word widths must be 1..={MAX_WORD_WIDTH}"
        );
        assert_eq!(
            widths.iter().map(|&w| w as usize).sum::<usize>(),
            bits.len(),
            "word widths must partition the assignment"
        );
        Self { bits, widths }
    }

    /// The assignment's words as values, LSB-first within each word.
    pub fn words(&self) -> Vec<u128> {
        let mut out = Vec::with_capacity(self.widths.len());
        let mut offset = 0;
        for &w in &self.widths {
            out.push(word_at(&self.bits, offset, w as usize));
            offset += w as usize;
        }
        out
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return f.write_str("(no inputs)");
        }
        for (i, (value, &width)) in self.words().iter().zip(&self.widths).enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            let digits = (width as usize).div_ceil(4);
            write!(f, "in[{i}]=0x{value:0digits$x}")?;
        }
        Ok(())
    }
}

/// Reads a word value from a flat bit assignment: `width` bits starting
/// at `offset`, LSB first — the inverse of how every word-level lowering
/// lays its operands out. A helper for [`Spec`] closures.
///
/// # Panics
///
/// Panics if the range is out of bounds or `width > MAX_WORD_WIDTH`.
pub fn word_at(bits: &[bool], offset: usize, width: usize) -> u128 {
    assert!(width <= MAX_WORD_WIDTH, "word wider than u128");
    let mut v: u128 = 0;
    for (i, &bit) in bits[offset..offset + width].iter().enumerate() {
        v |= (bit as u128) << i;
    }
    v
}

/// Appends a word's bits to a flat output vector, LSB first — the inverse
/// of [`word_at`]. A helper for [`Spec`] closures.
pub fn push_word(out: &mut Vec<bool>, value: u128, width: usize) {
    assert!(width <= MAX_WORD_WIDTH, "word wider than u128");
    for i in 0..width {
        out.push((value >> i) & 1 == 1);
    }
}

/// The outcome of one equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every output pair computes the same Boolean function, on **all**
    /// input assignments — a proof, not a sample.
    Equivalent,
    /// The sides differ, and here is an input proving it.
    NotEquivalent {
        /// Index (marking order) of the first differing output.
        output: usize,
        /// An assignment on which that output differs.
        counterexample: Counterexample,
    },
    /// The check could not be decided within budget (or the shapes are
    /// not comparable). Says nothing about equivalence either way.
    Unknown {
        /// Why the check gave up.
        reason: UnknownReason,
    },
}

/// What one check did and decided. `Display` gives a one-line summary
/// with the counterexample rendered as per-input-word hex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivReport {
    /// The decision.
    pub verdict: Verdict,
    /// Unique-table nodes built (both sides share the table) — the peak
    /// memory measure an [`EquivBudget::max_nodes`] caps.
    pub nodes: usize,
    /// Outputs proven equal before the verdict was reached (equal to the
    /// output count on [`Verdict::Equivalent`]).
    pub outputs_checked: usize,
}

impl EquivReport {
    /// `true` on [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self.verdict, Verdict::Equivalent)
    }
}

impl fmt::Display for EquivReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            Verdict::Equivalent => write!(
                f,
                "equivalent on all inputs ({} outputs, {} BDD nodes)",
                self.outputs_checked, self.nodes
            ),
            Verdict::NotEquivalent {
                output,
                counterexample,
            } => write!(
                f,
                "NOT equivalent: output {output} differs on {counterexample} ({} BDD nodes)",
                self.nodes
            ),
            Verdict::Unknown { reason } => {
                write!(f, "unknown: {reason} ({} BDD nodes)", self.nodes)
            }
        }
    }
}

/// A reference to a BDD function: node index with a complement bit in the
/// LSB. [`Bdd::TRUE`] is the sole terminal; its complement is `FALSE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct BddRef(u32);

impl BddRef {
    fn new(index: u32, neg: bool) -> Self {
        Self(index << 1 | neg as u32)
    }

    fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Free negation: flip the complement bit.
    fn not(self) -> Self {
        Self(self.0 ^ 1)
    }

    /// `self` with `parent_neg` pushed in (for cofactoring through a
    /// complemented reference).
    fn under(self, parent_neg: bool) -> Self {
        Self(self.0 ^ parent_neg as u32)
    }
}

/// One interned decision node: `var ? hi : lo`, with `hi` always regular.
#[derive(Clone, Copy)]
struct BddNode {
    var: u32,
    hi: BddRef,
    lo: BddRef,
}

/// Raised when the unique table would exceed the budget; surfaces as
/// [`Verdict::Unknown`].
struct NodeLimit;

/// The BDD manager: node store, unique table, and the shared `ite`
/// op-cache. All functions in one check live in one manager so
/// equivalence is reference equality.
struct Bdd {
    nodes: Vec<BddNode>,
    unique: HashMap<(u32, BddRef, BddRef), u32>,
    cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    max_nodes: usize,
}

/// Variable index reserved for the terminal (orders after every real
/// variable, so min-var recursion never descends into it).
const TERMINAL_VAR: u32 = u32::MAX;

impl Bdd {
    const TRUE: BddRef = BddRef(0);
    const FALSE: BddRef = BddRef(1);

    fn new(max_nodes: usize) -> Self {
        Self {
            // Node 0 is the terminal; its fields are never read as a
            // decision (TERMINAL_VAR keeps it out of every var-min).
            nodes: vec![BddNode {
                var: TERMINAL_VAR,
                hi: Self::TRUE,
                lo: Self::TRUE,
            }],
            unique: HashMap::new(),
            cache: HashMap::new(),
            max_nodes,
        }
    }

    fn var_of(&self, r: BddRef) -> u32 {
        self.nodes[r.index()].var
    }

    /// The single-variable function `var`.
    fn literal(&mut self, var: u32) -> Result<BddRef, NodeLimit> {
        self.mk(var, Self::TRUE, Self::FALSE)
    }

    /// Interns `var ? hi : lo` in canonical form: equal children collapse,
    /// a complemented `hi` is pushed outward, and structurally identical
    /// nodes are shared through the unique table.
    fn mk(&mut self, var: u32, hi: BddRef, lo: BddRef) -> Result<BddRef, NodeLimit> {
        if hi == lo {
            return Ok(hi);
        }
        // Canonical complement edges: the stored then-edge is regular.
        let (out_neg, hi, lo) = if hi.is_neg() {
            (true, hi.not(), lo.not())
        } else {
            (false, hi, lo)
        };
        let index = match self.unique.get(&(var, hi, lo)) {
            Some(&i) => i,
            None => {
                if self.nodes.len() >= self.max_nodes {
                    return Err(NodeLimit);
                }
                let i = self.nodes.len() as u32;
                self.nodes.push(BddNode { var, hi, lo });
                self.unique.insert((var, hi, lo), i);
                i
            }
        };
        Ok(BddRef::new(index, out_neg))
    }

    /// The cofactor of `r` with respect to its own top variable. Callers
    /// only invoke this when `var_of(r) == v` for the recursion's top `v`;
    /// otherwise `r` is independent of `v` and passes through unchanged.
    fn cofactor(&self, r: BddRef, v: u32, branch: bool) -> BddRef {
        if self.var_of(r) != v {
            return r;
        }
        let node = self.nodes[r.index()];
        let child = if branch { node.hi } else { node.lo };
        child.under(r.is_neg())
    }

    /// Memoized if-then-else — the one operator everything is built from.
    fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, NodeLimit> {
        // Terminal rules.
        if f == Self::TRUE {
            return Ok(g);
        }
        if f == Self::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Self::TRUE && h == Self::FALSE {
            return Ok(f);
        }
        if g == Self::FALSE && h == Self::TRUE {
            return Ok(f.not());
        }
        // Normalizations that fold the complement bit out of `f` and `g`,
        // quartering the op-cache's key space.
        let (f, g, h) = if f.is_neg() {
            (f.not(), h, g)
        } else {
            (f, g, h)
        };
        if g.is_neg() {
            return Ok(self.ite(f, g.not(), h.not())?.not());
        }
        if let Some(&hit) = self.cache.get(&(f, g, h)) {
            return Ok(hit);
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let t = self.ite(
            self.cofactor(f, v, true),
            self.cofactor(g, v, true),
            self.cofactor(h, v, true),
        )?;
        let e = self.ite(
            self.cofactor(f, v, false),
            self.cofactor(g, v, false),
            self.cofactor(h, v, false),
        )?;
        let out = self.mk(v, t, e)?;
        self.cache.insert((f, g, h), out);
        Ok(out)
    }

    /// One binary netlist gate as an `ite` over operand functions.
    fn gate(&mut self, g: Gate, a: BddRef, b: BddRef) -> Result<BddRef, NodeLimit> {
        let (t, f) = (Self::TRUE, Self::FALSE);
        match g {
            Gate::And => self.ite(a, b, f),
            Gate::Or => self.ite(a, t, b),
            Gate::Nand => Ok(self.ite(a, b, f)?.not()),
            Gate::Nor => Ok(self.ite(a, t, b)?.not()),
            Gate::Xor => self.ite(a, b.not(), b),
            Gate::Xnor => self.ite(a, b, b.not()),
            Gate::AndYN => self.ite(a, b.not(), f),
            Gate::AndNY => self.ite(a, f, b),
            Gate::OrYN => self.ite(a, t, b.not()),
            Gate::OrNY => self.ite(a, b, t),
        }
    }

    /// Evaluates `r` under a per-*variable* assignment (not per input
    /// slot — permute through the static order first).
    fn eval(&self, mut r: BddRef, by_var: &[bool]) -> bool {
        let mut parity = false;
        loop {
            parity ^= r.is_neg();
            let node = self.nodes[r.index()];
            if node.var == TERMINAL_VAR {
                return !parity;
            }
            r = if by_var[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
    }

    /// A satisfying per-variable assignment of a non-`FALSE` function
    /// (`None` for variables the function does not depend on). Greedy
    /// descent is complete on a reduced BDD: the only unsatisfiable
    /// function is `FALSE` itself, so whichever child is non-`FALSE`
    /// leads to the terminal.
    fn any_sat(&self, mut r: BddRef, num_vars: usize) -> Vec<Option<bool>> {
        debug_assert_ne!(r, Self::FALSE, "FALSE has no satisfying assignment");
        let mut by_var = vec![None; num_vars];
        while r != Self::TRUE {
            let node = self.nodes[r.index()];
            let hi = node.hi.under(r.is_neg());
            let lo = node.lo.under(r.is_neg());
            if hi != Self::FALSE {
                by_var[node.var as usize] = Some(true);
                r = hi;
            } else {
                by_var[node.var as usize] = Some(false);
                r = lo;
            }
        }
        by_var
    }
}

/// The sifting-free static variable order: `order[slot]` is the BDD
/// variable assigned to input slot `slot`. Inputs are sorted by the
/// topological level of their earliest consumer, then by that consumer's
/// position, then by slot — so operand words that meet early interleave
/// (the order that keeps carry-chain BDDs small) and the order is a pure
/// function of the netlist's structure.
pub fn input_order(net: &CircuitNetlist) -> Vec<usize> {
    let n = net.num_inputs();
    // Earliest consumer per input slot: (consumer level, consumer node).
    let mut first_use = vec![(usize::MAX, usize::MAX); n];
    let mut slot_of_node: HashMap<usize, usize> = HashMap::new();
    for (id, op) in net.ops().iter().enumerate() {
        if let GateOp::Input(slot) = *op {
            slot_of_node.insert(id, slot);
        }
        for operand in op.operands().into_iter().flatten() {
            if let Some(&slot) = slot_of_node.get(&operand) {
                let key = (net.levels()[id], id);
                if key < first_use[slot] {
                    first_use[slot] = key;
                }
            }
        }
    }
    let mut slots: Vec<usize> = (0..n).collect();
    slots.sort_by_key(|&s| (first_use[s], s));
    let mut order = vec![0usize; n];
    for (var, &slot) in slots.iter().enumerate() {
        order[slot] = var;
    }
    order
}

/// Compiles every node of `net` to a BDD function under `order`
/// (`order[slot]` = variable of input slot `slot`), returning the
/// per-output references in marking order.
fn compile(net: &CircuitNetlist, order: &[usize], bdd: &mut Bdd) -> Result<Vec<BddRef>, NodeLimit> {
    let mut funcs: Vec<BddRef> = Vec::with_capacity(net.len());
    for op in net.ops() {
        let f = match *op {
            GateOp::Input(slot) => bdd.literal(order[slot] as u32)?,
            GateOp::Constant(v) => {
                if v {
                    Bdd::TRUE
                } else {
                    Bdd::FALSE
                }
            }
            GateOp::Not(a) => funcs[a].not(),
            GateOp::Binary(g, a, b) => bdd.gate(g, funcs[a], funcs[b])?,
            GateOp::Mux { sel, a, b } => bdd.ite(funcs[sel], funcs[a], funcs[b])?,
        };
        funcs.push(f);
    }
    Ok(net.outputs().iter().map(|&o| funcs[o]).collect())
}

/// Evaluates `net` on a plaintext assignment (one bool per input slot),
/// returning the output bits in marking order — the eager reference the
/// BDD proofs are replayed against in tests, and a convenience for
/// [`Spec`] authors.
///
/// # Panics
///
/// Panics if `inputs` does not match [`CircuitNetlist::num_inputs`].
pub fn eval_netlist(net: &CircuitNetlist, inputs: &[bool]) -> Vec<bool> {
    assert_eq!(
        inputs.len(),
        net.num_inputs(),
        "netlist expects {} inputs, got {}",
        net.num_inputs(),
        inputs.len()
    );
    let mut values: Vec<bool> = Vec::with_capacity(net.len());
    for op in net.ops() {
        let v = match *op {
            GateOp::Input(slot) => inputs[slot],
            GateOp::Constant(c) => c,
            GateOp::Not(a) => !values[a],
            GateOp::Binary(g, a, b) => g.eval(values[a], values[b]),
            GateOp::Mux { sel, a, b } => {
                if values[sel] {
                    values[a]
                } else {
                    values[b]
                }
            }
        };
        values.push(v);
    }
    net.outputs().iter().map(|&o| values[o]).collect()
}

/// Proves `left` and `right` compute identical functions on every output
/// (under [`EquivBudget`] `budget`), or extracts a distinguishing input.
/// Counterexamples render with the default byte partition; use
/// [`check_with_words`] when the word structure is known.
pub fn check(left: &CircuitNetlist, right: &CircuitNetlist, budget: EquivBudget) -> EquivReport {
    check_with_words(left, right, budget, &byte_partition(left.num_inputs()))
}

/// [`check`] with an explicit input word partition (widths in input-slot
/// order, used only to render counterexamples — see [`Counterexample`]).
///
/// # Panics
///
/// Panics if `widths` does not partition `left`'s input slots (when the
/// shapes mismatch, `widths` is ignored and no panic occurs).
pub fn check_with_words(
    left: &CircuitNetlist,
    right: &CircuitNetlist,
    budget: EquivBudget,
    widths: &[u8],
) -> EquivReport {
    if left.num_inputs() != right.num_inputs() || left.outputs().len() != right.outputs().len() {
        return EquivReport {
            verdict: Verdict::Unknown {
                reason: UnknownReason::ShapeMismatch {
                    inputs: (left.num_inputs(), right.num_inputs()),
                    outputs: (left.outputs().len(), right.outputs().len()),
                },
            },
            nodes: 0,
            outputs_checked: 0,
        };
    }
    let n = left.num_inputs();
    if n > budget.max_inputs {
        return EquivReport {
            verdict: Verdict::Unknown {
                reason: UnknownReason::InputBudget {
                    inputs: n,
                    max_inputs: budget.max_inputs,
                },
            },
            nodes: 0,
            outputs_checked: 0,
        };
    }
    let order = input_order(left);
    let mut bdd = Bdd::new(budget.max_nodes);
    let unknown = |bdd: &Bdd, checked: usize| EquivReport {
        verdict: Verdict::Unknown {
            reason: UnknownReason::NodeBudget {
                max_nodes: budget.max_nodes,
            },
        },
        nodes: bdd.nodes.len(),
        outputs_checked: checked,
    };
    let (lhs, rhs) = match (
        compile(left, &order, &mut bdd),
        compile(right, &order, &mut bdd),
    ) {
        (Ok(l), Ok(r)) => (l, r),
        _ => return unknown(&bdd, 0),
    };
    for (i, (&l, &r)) in lhs.iter().zip(&rhs).enumerate() {
        // Canonicity: same function ⇔ same reference.
        if l == r {
            continue;
        }
        // The diff is satisfiable exactly where the outputs disagree.
        let diff = match bdd.ite(l, r.not(), r) {
            Ok(d) => d,
            Err(NodeLimit) => return unknown(&bdd, i),
        };
        debug_assert_ne!(diff, Bdd::FALSE, "distinct refs must differ somewhere");
        let by_var = bdd.any_sat(diff, n);
        let mut bits = vec![false; n];
        for (slot, &var) in order.iter().enumerate() {
            bits[slot] = by_var[var].unwrap_or(false);
        }
        return EquivReport {
            verdict: Verdict::NotEquivalent {
                output: i,
                counterexample: Counterexample::with_widths(bits, widths.to_vec()),
            },
            nodes: bdd.nodes.len(),
            outputs_checked: i,
        };
    }
    EquivReport {
        verdict: Verdict::Equivalent,
        nodes: bdd.nodes.len(),
        outputs_checked: lhs.len(),
    }
}

/// The boxed closure type a [`Spec`] evaluates.
type SpecFn = Box<dyn Fn(&[bool]) -> Vec<bool> + Send + Sync>;

/// A plaintext arithmetic specification: the function a netlist is
/// supposed to compute, as a closure over the flat `&[bool]` input
/// assignment (input-slot order, LSB-first within each word). Build the
/// closures with [`word_at`] / [`push_word`].
pub struct Spec {
    /// Input word widths in netlist input-slot order (also the
    /// counterexample rendering partition).
    pub input_widths: Vec<u8>,
    /// Expected output bit count (marking order).
    pub output_bits: usize,
    eval: SpecFn,
}

impl Spec {
    /// A spec over `input_widths`-shaped words producing `output_bits`
    /// output bits.
    pub fn new(
        input_widths: Vec<u8>,
        output_bits: usize,
        eval: impl Fn(&[bool]) -> Vec<bool> + Send + Sync + 'static,
    ) -> Self {
        Self {
            input_widths,
            output_bits,
            eval: Box::new(eval),
        }
    }

    /// Total input bits the spec expects.
    pub fn input_bits(&self) -> usize {
        self.input_widths.iter().map(|&w| w as usize).sum()
    }

    /// Evaluates the spec on one assignment.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        (self.eval)(inputs)
    }
}

impl fmt::Debug for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spec")
            .field("input_widths", &self.input_widths)
            .field("output_bits", &self.output_bits)
            .finish_non_exhaustive()
    }
}

/// Proves `net` computes exactly `spec` on **every** input assignment:
/// the netlist is compiled to BDDs (under `budget`) and compared against
/// the spec closure over the full `2ⁿ` assignment space. Exponential in
/// the input count by construction — [`EquivBudget::max_inputs`] is the
/// guard; every shipped library entry has ≤ 18 inputs.
pub fn check_spec(net: &CircuitNetlist, spec: &Spec, budget: EquivBudget) -> EquivReport {
    if net.num_inputs() != spec.input_bits() || net.outputs().len() != spec.output_bits {
        return EquivReport {
            verdict: Verdict::Unknown {
                reason: UnknownReason::ShapeMismatch {
                    inputs: (net.num_inputs(), spec.input_bits()),
                    outputs: (net.outputs().len(), spec.output_bits),
                },
            },
            nodes: 0,
            outputs_checked: 0,
        };
    }
    let n = net.num_inputs();
    if n > budget.max_inputs || n >= usize::BITS as usize - 1 {
        return EquivReport {
            verdict: Verdict::Unknown {
                reason: UnknownReason::InputBudget {
                    inputs: n,
                    max_inputs: budget.max_inputs.min(usize::BITS as usize - 2),
                },
            },
            nodes: 0,
            outputs_checked: 0,
        };
    }
    let order = input_order(net);
    let mut bdd = Bdd::new(budget.max_nodes);
    let outputs = match compile(net, &order, &mut bdd) {
        Ok(o) => o,
        Err(NodeLimit) => {
            return EquivReport {
                verdict: Verdict::Unknown {
                    reason: UnknownReason::NodeBudget {
                        max_nodes: budget.max_nodes,
                    },
                },
                nodes: bdd.nodes.len(),
                outputs_checked: 0,
            }
        }
    };
    let mut bits = vec![false; n];
    let mut by_var = vec![false; n];
    for assignment in 0..(1usize << n) {
        for slot in 0..n {
            let b = (assignment >> slot) & 1 == 1;
            bits[slot] = b;
            by_var[order[slot]] = b;
        }
        let expected = spec.eval(&bits);
        assert_eq!(
            expected.len(),
            outputs.len(),
            "spec produced {} output bits, declared {}",
            expected.len(),
            outputs.len()
        );
        for (i, (&f, &want)) in outputs.iter().zip(&expected).enumerate() {
            if bdd.eval(f, &by_var) != want {
                return EquivReport {
                    verdict: Verdict::NotEquivalent {
                        output: i,
                        counterexample: Counterexample::with_widths(
                            bits.clone(),
                            spec.input_widths.clone(),
                        ),
                    },
                    nodes: bdd.nodes.len(),
                    outputs_checked: i,
                };
            }
        }
    }
    EquivReport {
        verdict: Verdict::Equivalent,
        nodes: bdd.nodes.len(),
        outputs_checked: outputs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::simplify;

    fn budget() -> EquivBudget {
        EquivBudget::default()
    }

    /// One netlist per gate: `out = g(a, b)`.
    fn gate_net(g: Gate) -> CircuitNetlist {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let o = net.gate(g, a, b);
        net.mark_output(o);
        net
    }

    #[test]
    fn every_gate_compiles_to_its_truth_table() {
        for &g in &Gate::ALL {
            let net = gate_net(g);
            for assignment in 0..4usize {
                let a = assignment & 1 == 1;
                let b = assignment >> 1 == 1;
                let out = eval_netlist(&net, &[a, b]);
                assert_eq!(out[0], g.eval(a, b), "{g:?} eager eval");
                // …and the BDD agrees: prove the gate against a spec
                // closure built from the truth table itself.
                let spec = Spec::new(vec![1, 1], 1, move |bits| vec![g.eval(bits[0], bits[1])]);
                assert!(
                    check_spec(&net, &spec, budget()).is_equivalent(),
                    "{g:?} BDD vs truth table"
                );
            }
        }
    }

    #[test]
    fn mux_and_not_compile_exactly() {
        let mut net = CircuitNetlist::new();
        let s = net.input();
        let a = net.input();
        let b = net.input();
        let na = net.not(a);
        let m = net.mux(s, na, b);
        net.mark_output(m);
        let spec = Spec::new(vec![1, 1, 1], 1, |bits| {
            vec![if bits[0] { !bits[1] } else { bits[2] }]
        });
        assert!(check_spec(&net, &spec, budget()).is_equivalent());
    }

    #[test]
    fn canonicity_makes_distinct_constructions_reference_equal() {
        // a XOR b built two structurally different ways.
        let left = gate_net(Gate::Xor);
        let mut right = CircuitNetlist::new();
        let a = right.input();
        let b = right.input();
        let or = right.gate(Gate::Or, a, b);
        let nand = right.gate(Gate::Nand, a, b);
        let xor = right.gate(Gate::And, or, nand);
        right.mark_output(xor);
        let report = check(&left, &right, budget());
        assert!(report.is_equivalent(), "{report}");
        assert_eq!(report.outputs_checked, 1);
    }

    #[test]
    fn inequivalent_netlists_yield_a_replayable_counterexample() {
        let left = gate_net(Gate::Xor);
        let right = gate_net(Gate::Xnor);
        let report = check(&left, &right, budget());
        match &report.verdict {
            Verdict::NotEquivalent {
                output,
                counterexample,
            } => {
                assert_eq!(*output, 0);
                // Replay: the assignment really distinguishes them.
                let l = eval_netlist(&left, &counterexample.bits);
                let r = eval_netlist(&right, &counterexample.bits);
                assert_ne!(l[0], r[0], "counterexample must distinguish");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn counterexample_renders_per_word_hex() {
        let cex = Counterexample::with_widths(
            vec![
                false, true, false, true, true, false, false, false, // 0x1a
                true, true, false, false, // 0x3
            ],
            vec![8, 4],
        );
        assert_eq!(cex.to_string(), "in[0]=0x1a in[1]=0x3");
        assert_eq!(cex.words(), vec![0x1a, 0x3]);
        // Default partition: bytes with a remainder.
        let default = Counterexample::from_bits(vec![true; 10]);
        assert_eq!(default.widths, vec![8, 2]);
        assert_eq!(default.to_string(), "in[0]=0xff in[1]=0x3");
    }

    #[test]
    fn node_budget_degrades_to_unknown() {
        // A 6-bit comparator wants more than 3 nodes.
        let mut net = CircuitNetlist::new();
        let inputs: Vec<usize> = (0..12).map(|_| net.input()).collect();
        let mut acc = net.gate(Gate::Xnor, inputs[0], inputs[6]);
        for i in 1..6 {
            let eq = net.gate(Gate::Xnor, inputs[i], inputs[i + 6]);
            acc = net.gate(Gate::And, acc, eq);
        }
        net.mark_output(acc);
        let tiny = EquivBudget {
            max_nodes: 3,
            max_inputs: 64,
        };
        let report = check(&net, &net.clone(), tiny);
        // Same structure compiles to the same refs cheaply — compare
        // against a *different* structure to force node growth.
        let mut other = CircuitNetlist::new();
        let ins: Vec<usize> = (0..12).map(|_| other.input()).collect();
        let mut acc = other.gate(Gate::Xor, ins[0], ins[6]);
        for i in 1..6 {
            let ne = other.gate(Gate::Xor, ins[i], ins[i + 6]);
            acc = other.gate(Gate::Or, acc, ne);
        }
        let eq = other.not(acc);
        other.mark_output(eq);
        let report2 = check(&net, &other, tiny);
        for r in [&report, &report2] {
            assert!(
                matches!(r.verdict, Verdict::Equivalent | Verdict::Unknown { .. }),
                "budget must degrade, never mis-decide: {r:?}"
            );
        }
        assert!(
            matches!(
                report2.verdict,
                Verdict::Unknown {
                    reason: UnknownReason::NodeBudget { max_nodes: 3 }
                }
            ),
            "{report2:?}"
        );
    }

    #[test]
    fn input_budget_degrades_to_unknown() {
        let net = gate_net(Gate::And);
        let b = EquivBudget {
            max_nodes: 1 << 20,
            max_inputs: 1,
        };
        let report = check(&net, &net.clone(), b);
        assert_eq!(
            report.verdict,
            Verdict::Unknown {
                reason: UnknownReason::InputBudget {
                    inputs: 2,
                    max_inputs: 1
                }
            }
        );
    }

    #[test]
    fn shape_mismatch_is_unknown_not_a_panic() {
        let two_in = gate_net(Gate::And);
        let mut one_in = CircuitNetlist::new();
        let a = one_in.input();
        let n = one_in.not(a);
        one_in.mark_output(n);
        let report = check(&two_in, &one_in, budget());
        assert!(
            matches!(
                report.verdict,
                Verdict::Unknown {
                    reason: UnknownReason::ShapeMismatch { .. }
                }
            ),
            "{report:?}"
        );
    }

    #[test]
    fn input_order_interleaves_ripple_operands() {
        // a0,a1,b0,b1 consumed pairwise (a0 with b0 first, then a1 with
        // b1): the static order must interleave, not concatenate.
        let mut net = CircuitNetlist::new();
        let a0 = net.input();
        let a1 = net.input();
        let b0 = net.input();
        let b1 = net.input();
        let g0 = net.gate(Gate::And, a0, b0);
        let g1 = net.gate(Gate::Xor, a1, b1);
        let o = net.gate(Gate::Or, g0, g1);
        net.mark_output(o);
        let order = input_order(&net);
        // slots a0,b0 get vars 0,1; slots a1,b1 get vars 2,3.
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn simplify_rewrites_prove_equivalent_on_a_foldable_net() {
        // Constant-foldable net: the simplified form drops bootstraps but
        // must stay function-identical.
        let mut net = CircuitNetlist::new();
        let x = net.input();
        let y = net.input();
        let t = net.constant(true);
        let g = net.gate(Gate::And, x, t);
        let h = net.gate(Gate::Xor, g, y);
        let h2 = net.gate(Gate::Xor, g, y); // CSE candidate
        let o = net.gate(Gate::Or, h, h2);
        net.mark_output(o);
        let (simplified, report) = simplify(&net);
        assert!(report.bootstraps_saved() > 0);
        assert!(check(&net, &simplified, budget()).is_equivalent());
    }

    #[test]
    fn unused_inputs_default_to_false_in_counterexamples() {
        // Output ignores input 1; the counterexample still assigns it.
        let mut left = CircuitNetlist::new();
        let a = left.input();
        let _unused = left.input();
        let n = left.not(a);
        left.mark_output(n);
        let mut right = CircuitNetlist::new();
        let a2 = right.input();
        let _unused2 = right.input();
        let n2 = right.not(a2);
        let nn = right.not(n2);
        right.mark_output(nn); // identity, differs from NOT
        match check(&left, &right, budget()).verdict {
            Verdict::NotEquivalent { counterexample, .. } => {
                assert_eq!(counterexample.bits.len(), 2);
                assert!(!counterexample.bits[1], "unused input defaults false");
                let l = eval_netlist(&left, &counterexample.bits);
                let r = eval_netlist(&right, &counterexample.bits);
                assert_ne!(l, r);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }
}
