//! A std-only circuit-serving front end over the persistent batch pool,
//! with **cross-circuit wave interleaving** and production-grade
//! admission control.
//!
//! The north-star serving story: many clients submit whole encrypted
//! circuits, and one scheduler keeps every resident bootstrapping worker
//! busy on the dependent gate workload — MATCHA's scheduler feeding its
//! eight pipelines, in software. [`CircuitServer`] owns a scheduler
//! thread; the scheduler owns a [`GateBatchPool`] and keeps **every
//! admitted circuit in flight at once**: each pool dispatch is filled
//! with the ready frontier of *all* in-flight circuits (oldest admission
//! first), so a deep, narrow circuit no longer leaves workers idle while
//! other clients queue behind it — the utilization gap the paper's
//! 8-pipeline scheduler closes with dependent-gate interleaving.
//!
//! Any number of [`CircuitClient`] handles (cheaply cloneable, `Send`)
//! can submit concurrently over the mpsc job queue; each submission
//! yields a [`PendingCircuit`] ticket resolving to a [`CircuitOutcome`].
//! Fairness, isolation and robustness guarantees:
//!
//! * **FIFO-fair**: circuits are admitted in queue order and each
//!   dispatch takes ready tasks oldest-circuit-first; every in-flight
//!   circuit contributes its whole ready frontier to every dispatch, so
//!   no circuit can starve another.
//! * **Bounded admission**: a [`ServerConfig`] caps the in-flight set
//!   ([`ServerConfig::queue_depth`]) and each client's share of it
//!   ([`ServerConfig::per_client_quota`]); overflow resolves to a
//!   structured [`CircuitOutcome::Rejected`] with a [`RejectReason`]
//!   instead of unbounded queueing behind a heavy client.
//! * **Deadlines and cancellation**: [`CircuitClient::submit_with_deadline`]
//!   bounds a circuit's wall-clock; the scheduler checks deadlines and
//!   [`PendingCircuit::cancel`] flags between dispatches, resolves the
//!   circuit to [`CircuitOutcome::Expired`] / [`CircuitOutcome::Cancelled`]
//!   and abandons its remaining frontier so dead work stops consuming
//!   bootstrap slots.
//! * **Per-client order**: a client's tickets resolve through their own
//!   channels, so waiting on them in submission order always observes
//!   that order, even though a short circuit may *finish* before a long
//!   one submitted earlier.
//! * **Per-circuit fault isolation**: a task that panics in a worker
//!   (e.g. a wrong-dimension operand smuggled past validation) faults
//!   only the circuit that owns it — its ticket resolves to
//!   [`CircuitOutcome::Faulted`] while every other in-flight circuit,
//!   the scheduler, and the pool keep going. A worker that *dies* is
//!   respawned by the pool ([`GateBatchPool::heal`]) and surfaced in
//!   [`SchedulerStats::restarts`].
//!
//! Every guarantee above is pinned by deterministic tests driving the
//! [`faults`](crate::faults) module through
//! [`CircuitServer::start_with_faults`]: each admitted circuit's slab is
//! tagged with its admission sequence number (0, 1, 2, … in queue
//! order), so a [`FaultPlan`](crate::faults::FaultPlan) can script a
//! panic, delay, or worker death at an exact `(circuit, node)` point.
//!
//! Shutdown is graceful: circuits admitted before [`CircuitServer::shutdown`]
//! still run to completion, later submissions resolve to
//! [`CircuitOutcome::Rejected`] with [`RejectReason::Shutdown`].

use crate::analyze::equiv::{self, Counterexample, Verdict};
use crate::analyze::{self, AnalysisPolicy, LintKind, SimplifyReport};
use crate::batch::{panic_message, GateBatchPool, SlabTask};
use crate::circuit::{CircuitFrontier, CircuitNetlist, CircuitRun};
use crate::faults::FaultPlan;
use crate::gates::ServerKey;
use crate::lwe::LweCiphertext;
use crate::packing;
use crate::params::ParameterSet;
use crate::tlwe::TrlweCiphertext;
use matcha_fft::FftEngine;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission-control knobs for a [`CircuitServer`]. The default is the
/// pre-robustness behavior: unbounded in-flight set, unbounded per-client
/// share, no deadline.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum circuits admitted (in flight) at once; an admission past
    /// this resolves to [`RejectReason::QueueFull`].
    pub queue_depth: usize,
    /// Maximum in-flight circuits per client handle; an admission past
    /// this resolves to [`RejectReason::QuotaExceeded`] while other
    /// clients keep being admitted — one heavy client cannot monopolize
    /// the pool.
    pub per_client_quota: usize,
    /// Deadline applied by [`CircuitClient::submit`] when the caller does
    /// not pick one; `None` means submissions run unbounded.
    pub default_deadline: Option<Duration>,
    /// Static-analysis admission policy: when set, every submission is
    /// [`analyze`](crate::analyze::analyze)d before admission and rejected
    /// with [`RejectReason::Lint`] or [`RejectReason::NoiseBudget`] when it
    /// trips the policy's lint-severity or failure-probability knob.
    /// `None` (the default) admits without analysis.
    pub analysis: Option<AnalysisPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_depth: usize::MAX,
            per_client_quota: usize::MAX,
            default_deadline: None,
            analysis: None,
        }
    }
}

/// A netlist rewrite pass the scheduler may substitute for a submission
/// at admission, returning the rewritten netlist and what it changed.
/// The default pass is [`analyze::simplify`]; the point of the type is
/// that **any** pass plugged in here (e.g. a future multi-input-gate
/// fusion pass) is automatically subject to the
/// [`AnalysisPolicy::require_equivalence`] BDD proof: the server only
/// schedules a rewrite it has proven function-identical to the
/// submission, and an unproven one is either rejected (strict policies)
/// or ignored in favor of the submitted netlist.
pub type RewritePass = fn(&CircuitNetlist) -> (CircuitNetlist, SimplifyReport);

/// Why a circuit was turned away without running.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// The in-flight set was at [`ServerConfig::queue_depth`].
    QueueFull,
    /// The submitting client was at [`ServerConfig::per_client_quota`].
    QuotaExceeded,
    /// The deadline had already passed when the circuit reached
    /// admission — running it could only waste bootstraps.
    DeadlineUnmeetable,
    /// The submission failed validation (input count or LWE dimension)
    /// at the client API boundary; it was never queued.
    InvalidInput,
    /// Admission analysis found a structural lint at or above the
    /// [`AnalysisPolicy::deny`] severity — the circuit would waste
    /// bootstraps on malformed structure.
    Lint {
        /// The lint that fired.
        kind: LintKind,
        /// The offending netlist node.
        node: usize,
    },
    /// Admission analysis certified an output's worst-case decryption
    /// failure probability above the policy budget — running the circuit
    /// could silently decrypt wrong.
    NoiseBudget {
        /// Index into the netlist's output list (marking order).
        output: usize,
        /// The analytic failure-probability bound for that output.
        bound: f64,
        /// The [`AnalysisPolicy::max_failure_prob`] budget it exceeded.
        budget: f64,
    },
    /// The admission-time equivalence proof **refuted** the server's
    /// rewrite pass on this circuit: the rewrite and the submission
    /// disagree on an output, and the counterexample is an input
    /// assignment on which they differ. Scheduling either would be
    /// gambling, so the circuit is turned away with the evidence.
    NotEquivalent {
        /// Index into the netlist's output list (marking order) of the
        /// first output the BDD diff refuted.
        output: usize,
        /// A concrete distinguishing input assignment.
        counterexample: Counterexample,
    },
    /// The server shut down before admitting the circuit.
    Shutdown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => f.write_str("admission queue full"),
            RejectReason::QuotaExceeded => f.write_str("per-client quota exceeded"),
            RejectReason::DeadlineUnmeetable => f.write_str("deadline already passed"),
            RejectReason::InvalidInput => f.write_str("invalid input payload"),
            RejectReason::Lint { kind, node } => write!(f, "lint {kind} at node {node}"),
            RejectReason::NoiseBudget {
                output,
                bound,
                budget,
            } => write!(
                f,
                "output {output} failure bound {bound:.3e} exceeds budget {budget:.3e}"
            ),
            RejectReason::NotEquivalent {
                output,
                counterexample,
            } => write!(
                f,
                "rewrite not equivalent: output {output} differs on {counterexample}"
            ),
            RejectReason::Shutdown => f.write_str("server shut down"),
        }
    }
}

/// The input payload of one queued circuit: gate-level samples per slot,
/// or packed TRLWE transport samples the scheduler unpacks at admission
/// (sample-extract + key switch straight into the run's slab).
enum CircuitInputs {
    Lwe(Vec<LweCiphertext>),
    Packed(Vec<TrlweCiphertext>),
}

/// One queued circuit execution request.
struct CircuitJob {
    netlist: CircuitNetlist,
    inputs: CircuitInputs,
    reply: mpsc::Sender<CircuitOutcome>,
    /// Submitting client handle's identity, for quotas and tallies.
    client: u64,
    /// Absolute wall-clock bound, if any.
    deadline: Option<Instant>,
    /// Set by [`PendingCircuit::cancel`]; checked at admission and
    /// between dispatches.
    cancel: Arc<AtomicBool>,
}

enum Msg {
    Job(Box<CircuitJob>),
    Shutdown,
}

/// How one submitted circuit ended. Every ticket resolves to exactly one
/// of these.
#[derive(Clone, Debug)]
pub enum CircuitOutcome {
    /// The circuit ran to completion.
    Completed(CircuitRun),
    /// The circuit panicked during execution (the message is the panic
    /// payload, e.g. a dimension-mismatch assertion). The server and
    /// every other in-flight circuit keep running.
    Faulted(String),
    /// The circuit was turned away without running — see the
    /// [`RejectReason`] for which admission bound it hit.
    Rejected(RejectReason),
    /// The circuit's deadline passed before it finished; its remaining
    /// work was abandoned mid-flight.
    Expired,
    /// [`PendingCircuit::cancel`] was observed before the circuit
    /// finished; its remaining work was abandoned.
    Cancelled,
}

impl CircuitOutcome {
    /// The completed run, if any — `None` for every other variant.
    pub fn completed(self) -> Option<CircuitRun> {
        match self {
            CircuitOutcome::Completed(run) => Some(run),
            _ => None,
        }
    }

    /// `true` when the circuit ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, CircuitOutcome::Completed(_))
    }

    /// `true` when the circuit panicked during execution.
    pub fn is_faulted(&self) -> bool {
        matches!(self, CircuitOutcome::Faulted(_))
    }

    /// `true` when the circuit was turned away without running (any
    /// [`RejectReason`]).
    pub fn is_rejected(&self) -> bool {
        matches!(self, CircuitOutcome::Rejected(_))
    }

    /// The structured rejection reason, if the circuit was rejected.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            CircuitOutcome::Rejected(reason) => Some(reason.clone()),
            _ => None,
        }
    }

    /// `true` when the circuit's deadline passed mid-flight.
    pub fn is_expired(&self) -> bool {
        matches!(self, CircuitOutcome::Expired)
    }

    /// `true` when the circuit was cancelled before finishing.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, CircuitOutcome::Cancelled)
    }
}

/// Per-client outcome tallies, reported in [`SchedulerStats::per_client`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientTally {
    /// Circuits of this client that resolved [`CircuitOutcome::Completed`].
    pub completed: u64,
    /// Circuits of this client that resolved [`CircuitOutcome::Rejected`]
    /// (any reason, including client-side `InvalidInput`).
    pub rejected: u64,
}

/// Live scheduler counters, shared with [`CircuitServer::stats`] readers.
#[derive(Default)]
struct StatsCells {
    dispatches: AtomicU64,
    tasks: AtomicU64,
    slots: AtomicU64,
    max_in_flight: AtomicU64,
    completed: AtomicU64,
    faulted: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    restarts: AtomicU64,
    per_client: Mutex<BTreeMap<u64, ClientTally>>,
}

impl StatsCells {
    fn tally_completed(&self, client: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.per_client
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(client)
            .or_default()
            .completed += 1;
    }

    /// Counts a structured rejection against `client` and resolves the
    /// ticket. Used by the scheduler at admission and by the client
    /// handle for boundary (`InvalidInput`) rejections.
    fn reject(&self, client: u64, reason: RejectReason, reply: &mpsc::Sender<CircuitOutcome>) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.per_client
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(client)
            .or_default()
            .rejected += 1;
        let _ = reply.send(CircuitOutcome::Rejected(reason));
    }
}

/// A snapshot of the scheduler's monotone counters.
///
/// `slots` models each non-empty dispatch of `t` tasks on `P` workers as
/// `ceil(t / P)` rounds of `P` task-slots, so
/// [`SchedulerStats::utilization`] — busy task-slots over offered
/// wave-slots — is a *structural* measure of how full the pool's waves
/// run, independent of clock noise: interleaving several circuits fills
/// the narrow tail waves of each with the other circuits' work.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Non-empty pool dispatches (interleaved super-waves).
    pub dispatches: u64,
    /// Tasks dispatched across all circuits.
    pub tasks: u64,
    /// Task-slots offered: `Σ ceil(tasks / threads) · threads`.
    pub slots: u64,
    /// High-water mark of circuits simultaneously in flight.
    pub max_in_flight: u64,
    /// Circuits that resolved [`CircuitOutcome::Completed`].
    pub completed: u64,
    /// Circuits that resolved [`CircuitOutcome::Faulted`].
    pub faulted: u64,
    /// Circuits that resolved [`CircuitOutcome::Rejected`] (any reason).
    pub rejected: u64,
    /// Circuits that resolved [`CircuitOutcome::Expired`].
    pub expired: u64,
    /// Circuits that resolved [`CircuitOutcome::Cancelled`].
    pub cancelled: u64,
    /// Pool workers respawned after dying outside the per-task panic
    /// isolation (mirrors [`GateBatchPool::restarts`]).
    pub restarts: u64,
    /// Per-client completed/rejected tallies, ascending by client id.
    pub per_client: Vec<(u64, ClientTally)>,
}

impl SchedulerStats {
    /// Busy task-slots over offered wave-slots, in `(0, 1]` once any
    /// dispatch ran (0.0 before).
    pub fn utilization(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.tasks as f64 / self.slots as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot, for measuring one
    /// phase of traffic. `max_in_flight` is a high-water mark, not a
    /// counter: the later snapshot's value is kept as-is. Every field
    /// saturates at zero, so feeding snapshots in the wrong order (or
    /// racing a snapshot against a concurrent update) yields zeros, never
    /// an underflow panic.
    pub fn since(&self, earlier: &SchedulerStats) -> SchedulerStats {
        let per_client = self
            .per_client
            .iter()
            .map(|&(id, tally)| {
                let before = earlier
                    .per_client
                    .iter()
                    .find(|&&(eid, _)| eid == id)
                    .map(|&(_, t)| t)
                    .unwrap_or_default();
                (
                    id,
                    ClientTally {
                        completed: tally.completed.saturating_sub(before.completed),
                        rejected: tally.rejected.saturating_sub(before.rejected),
                    },
                )
            })
            .collect();
        SchedulerStats {
            dispatches: self.dispatches.saturating_sub(earlier.dispatches),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            slots: self.slots.saturating_sub(earlier.slots),
            max_in_flight: self.max_in_flight,
            completed: self.completed.saturating_sub(earlier.completed),
            faulted: self.faulted.saturating_sub(earlier.faulted),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            expired: self.expired.saturating_sub(earlier.expired),
            cancelled: self.cancelled.saturating_sub(earlier.cancelled),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            per_client,
        }
    }
}

/// A request server executing encrypted circuits on a persistent worker
/// pool, interleaving every in-flight circuit's ready wave into each
/// dispatch. Non-generic: the FFT engine lives entirely inside the
/// scheduler thread.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::circuit::CircuitNetlist;
/// use matcha_tfhe::server::CircuitServer;
/// use matcha_tfhe::{ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let key = Arc::new(ServerKey::new(&client, F64Fft::new(1024), &mut rng));
/// let server = CircuitServer::start(key, 8);
///
/// let mut net = CircuitNetlist::new();
/// let (a, b) = (net.input(), net.input());
/// let nand = net.gate(Gate::Nand, a, b);
/// net.mark_output(nand);
///
/// let handle = server.client();
/// let pending = handle.submit(net, vec![client.encrypt(true), client.encrypt(true)]);
/// let run = pending.wait().completed().expect("server is live");
/// assert!(!client.decrypt(&run.outputs[0]));
/// server.shutdown();
/// ```
pub struct CircuitServer {
    tx: mpsc::Sender<Msg>,
    scheduler: Option<JoinHandle<()>>,
    stats: Arc<StatsCells>,
    params: ParameterSet,
    default_deadline: Option<Duration>,
    next_client: AtomicU64,
}

/// One circuit in flight on the scheduler.
struct InFlight {
    frontier: CircuitFrontier,
    reply: mpsc::Sender<CircuitOutcome>,
    client: u64,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
}

/// Admission: applies the [`ServerConfig`] bounds, then builds a frontier
/// for the job, tagging its slab with the admission sequence number
/// (`next_tag`) fault plans key on. Admission-time panics (malformed
/// netlists or inputs that slipped past submit-side validation) fault
/// only this circuit, not the scheduler.
fn admit<E>(
    in_flight: &mut Vec<InFlight>,
    job: CircuitJob,
    pool: &GateBatchPool<E>,
    stats: &StatsCells,
    config: &ServerConfig,
    rewrite: RewritePass,
    next_tag: &mut u64,
) where
    E: FftEngine + Send + Sync + 'static,
{
    let CircuitJob {
        mut netlist,
        inputs,
        reply,
        client,
        deadline,
        cancel,
    } = job;
    // A cancel that raced ahead of admission: honor it without running.
    if cancel.load(Ordering::Relaxed) {
        stats.cancelled.fetch_add(1, Ordering::Relaxed);
        let _ = reply.send(CircuitOutcome::Cancelled);
        return;
    }
    if in_flight.len() >= config.queue_depth {
        stats.reject(client, RejectReason::QueueFull, &reply);
        return;
    }
    if in_flight.iter().filter(|fl| fl.client == client).count() >= config.per_client_quota {
        stats.reject(client, RejectReason::QuotaExceeded, &reply);
        return;
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        stats.reject(client, RejectReason::DeadlineUnmeetable, &reply);
        return;
    }
    // Static-analysis admission: certify structure and noise budget
    // before a single bootstrap is spent on this circuit.
    if let Some(policy) = config.analysis {
        let report = analyze::analyze(&netlist, pool.server().params(), pool.server().unroll());
        if let Some(l) = report.worst_lint_at_least(policy.deny) {
            let reason = RejectReason::Lint {
                kind: l.kind,
                node: l.node,
            };
            stats.reject(client, reason, &reply);
            return;
        }
        if let Some((output, o)) = report
            .noise
            .outputs
            .iter()
            .enumerate()
            .find(|(_, o)| o.failure_prob > policy.max_failure_prob)
        {
            let reason = RejectReason::NoiseBudget {
                output,
                bound: o.failure_prob,
                budget: policy.max_failure_prob,
            };
            stats.reject(client, reason, &reply);
            return;
        }
        // Formal-equivalence gate: run the rewrite pass and schedule its
        // output only under a BDD proof that it computes the submitted
        // function. A refuted rewrite is rejected with the distinguishing
        // input; an unprovable one (budget exhausted) surfaces as an
        // `EquivUnknown` warning — fatal under a strict `deny`, otherwise
        // the submission runs unrewritten.
        if let Some(budget) = policy.require_equivalence {
            let (rewritten, _) = rewrite(&netlist);
            match equiv::check(&netlist, &rewritten, budget).verdict {
                Verdict::Equivalent => netlist = rewritten,
                Verdict::NotEquivalent {
                    output,
                    counterexample,
                } => {
                    let reason = RejectReason::NotEquivalent {
                        output,
                        counterexample,
                    };
                    stats.reject(client, reason, &reply);
                    return;
                }
                Verdict::Unknown { .. } => {
                    if LintKind::EquivUnknown.severity() >= policy.deny {
                        let reason = RejectReason::Lint {
                            kind: LintKind::EquivUnknown,
                            node: 0,
                        };
                        stats.reject(client, reason, &reply);
                        return;
                    }
                }
            }
        }
    }
    match catch_unwind(AssertUnwindSafe(|| {
        build_frontier(netlist, inputs, pool.server(), *next_tag)
    })) {
        Ok(frontier) => {
            *next_tag += 1;
            in_flight.push(InFlight {
                frontier,
                reply,
                client,
                deadline,
                cancel,
            });
            stats
                .max_in_flight
                .fetch_max(in_flight.len() as u64, Ordering::Relaxed);
        }
        Err(payload) => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(CircuitOutcome::Faulted(panic_message(payload)));
        }
    }
}

/// Builds the frontier for an admitted job, moving or unpacking its
/// inputs straight into the run's [`ValueSlab`](crate::batch::ValueSlab):
/// per-LWE inputs are *moved* out of the submission (no clone), and
/// packed TRLWE inputs are unpacked on the fly — sample `slot / N`,
/// coefficient `slot % N`, sample-extracted and key-switched directly
/// into the slot's slab cell, with no intermediate ciphertext vector.
/// Dimension mismatches panic (with the [`packing::extract_bit`]
/// boundary messages) and surface as [`CircuitOutcome::Faulted`] through
/// the caller's `catch_unwind`; validated submissions never hit them.
fn build_frontier<E: FftEngine>(
    netlist: CircuitNetlist,
    inputs: CircuitInputs,
    server: &ServerKey<E>,
    tag: u64,
) -> CircuitFrontier {
    let net = Arc::new(netlist);
    match inputs {
        CircuitInputs::Lwe(inputs) => {
            assert_eq!(
                inputs.len(),
                net.num_inputs(),
                "circuit expects {} inputs, got {}",
                net.num_inputs(),
                inputs.len()
            );
            let mut inputs: Vec<Option<LweCiphertext>> = inputs.into_iter().map(Some).collect();
            CircuitFrontier::with_tag_from(net, server, tag, |slot| {
                inputs[slot].take().expect("input slots fill exactly once")
            })
        }
        CircuitInputs::Packed(samples) => {
            let params = *server.params();
            let n = params.ring_degree;
            assert_eq!(
                samples.len(),
                net.num_inputs().div_ceil(n),
                "{} packed samples carry {} input slots, circuit expects {}",
                samples.len(),
                samples.len() * n,
                net.num_inputs()
            );
            let ksk = server.kit().key_switch_key();
            CircuitFrontier::with_tag_from(net, server, tag, |slot| {
                packing::extract_bit(&samples[slot / n], slot % n, ksk, &params)
            })
        }
    }
}

/// The between-dispatches reap: resolves every in-flight circuit whose
/// cancel flag is set or whose deadline has passed, abandoning its
/// remaining frontier so dead work stops consuming bootstrap slots.
/// Order of the survivors is preserved (admission order).
fn reap(in_flight: &mut Vec<InFlight>, stats: &StatsCells) {
    let now = Instant::now();
    let doomed =
        |fl: &InFlight| fl.cancel.load(Ordering::Relaxed) || fl.deadline.is_some_and(|d| now >= d);
    if !in_flight.iter().any(doomed) {
        return;
    }
    let mut keep = Vec::with_capacity(in_flight.len());
    for fl in in_flight.drain(..) {
        if fl.cancel.load(Ordering::Relaxed) {
            stats.cancelled.fetch_add(1, Ordering::Relaxed);
            fl.frontier.abandon();
            let _ = fl.reply.send(CircuitOutcome::Cancelled);
        } else if fl.deadline.is_some_and(|d| now >= d) {
            stats.expired.fetch_add(1, Ordering::Relaxed);
            fl.frontier.abandon();
            let _ = fl.reply.send(CircuitOutcome::Expired);
        } else {
            keep.push(fl);
        }
    }
    *in_flight = keep;
}

/// The scheduler: admits circuits from the queue (applying the admission
/// bounds), reaps expired/cancelled circuits between dispatches, fills
/// every pool dispatch with the ready frontier of all in-flight circuits
/// (oldest first), routes per-task failures to the owning circuit, and
/// resolves tickets as circuits complete, fault, expire or are cancelled.
fn scheduler_loop<E>(
    key: Arc<ServerKey<E>>,
    threads: usize,
    rx: mpsc::Receiver<Msg>,
    stats: Arc<StatsCells>,
    config: ServerConfig,
    rewrite: RewritePass,
    faults: Option<Arc<FaultPlan>>,
) where
    E: FftEngine + Send + Sync + 'static,
{
    let pool = match faults {
        Some(plan) => GateBatchPool::with_faults(key, threads, plan),
        None => GateBatchPool::new(key, threads),
    };
    let mut in_flight: Vec<InFlight> = Vec::new();
    // Saw Shutdown: finish what is admitted, admit nothing more.
    let mut draining = false;
    // Admission sequence number — the slab tag fault plans key on.
    let mut next_tag: u64 = 0;
    let mut batch: Vec<SlabTask> = Vec::new();
    // Parallel to `batch`: index into `in_flight` owning each task.
    let mut owners: Vec<usize> = Vec::new();
    loop {
        // Admission. Block only when idle; with work in flight, drain
        // whatever has queued up between dispatches so new circuits join
        // the very next super-wave.
        if in_flight.is_empty() && !draining {
            match rx.recv() {
                Ok(Msg::Job(job)) => admit(
                    &mut in_flight,
                    *job,
                    &pool,
                    &stats,
                    &config,
                    rewrite,
                    &mut next_tag,
                ),
                // Graceful by FIFO: every job submitted before the
                // Shutdown message was enqueued ahead of it and already
                // admitted; anything racing in after it is explicitly
                // rejected below.
                Ok(Msg::Shutdown) | Err(_) => draining = true,
            }
        }
        while !draining {
            match rx.try_recv() {
                Ok(Msg::Job(job)) => admit(
                    &mut in_flight,
                    *job,
                    &pool,
                    &stats,
                    &config,
                    rewrite,
                    &mut next_tag,
                ),
                Ok(Msg::Shutdown) | Err(TryRecvError::Disconnected) => draining = true,
                Err(TryRecvError::Empty) => break,
            }
        }
        // Deadlines and cancellations are honored between dispatches —
        // including for circuits that expired while queued.
        reap(&mut in_flight, &stats);
        if in_flight.is_empty() {
            if draining {
                break;
            }
            continue;
        }

        // One interleaved super-wave: every in-flight circuit's ready
        // frontier, admission order first — FIFO-fair, and no circuit
        // can monopolize the dispatch because every other circuit's
        // ready tasks ride along.
        batch.clear();
        owners.clear();
        for (ci, fl) in in_flight.iter_mut().enumerate() {
            fl.frontier.take_ready(&mut batch);
            owners.resize(batch.len(), ci);
        }
        let dispatch = pool.run_tasks(&batch);
        if !batch.is_empty() {
            let p = pool.threads() as u64;
            stats.dispatches.fetch_add(1, Ordering::Relaxed);
            stats.tasks.fetch_add(batch.len() as u64, Ordering::Relaxed);
            stats
                .slots
                .fetch_add((batch.len() as u64).div_ceil(p) * p, Ordering::Relaxed);
        }
        stats.restarts.store(pool.restarts(), Ordering::Relaxed);

        // Route failures to their owning circuits (first message wins);
        // propagate completions for everyone still healthy.
        let mut faulted: Vec<Option<String>> = vec![None; in_flight.len()];
        for (index, msg) in dispatch.failures {
            let fault = &mut faulted[owners[index]];
            if fault.is_none() {
                *fault = Some(msg);
            }
        }
        for (index, st) in batch.iter().enumerate() {
            let ci = owners[index];
            if faulted[ci].is_none() {
                in_flight[ci].frontier.complete(st.node);
            }
        }

        // Resolve tickets; keep the rest in flight, order preserved.
        let mut keep: Vec<InFlight> = Vec::with_capacity(in_flight.len());
        for (fl, fault) in in_flight.drain(..).zip(faulted) {
            if let Some(msg) = fault {
                stats.faulted.fetch_add(1, Ordering::Relaxed);
                let _ = fl.reply.send(CircuitOutcome::Faulted(msg));
            } else if fl.frontier.is_done() {
                stats.tally_completed(fl.client);
                let _ = fl
                    .reply
                    .send(CircuitOutcome::Completed(fl.frontier.finish()));
            } else {
                keep.push(fl);
            }
        }
        in_flight = keep;
    }
    // Explicitly reject everything still queued so those tickets resolve
    // with a structured reason (the dropped-sender fallback in `wait` is
    // only a backstop for abrupt scheduler death).
    while let Ok(Msg::Job(job)) = rx.try_recv() {
        stats.reject(job.client, RejectReason::Shutdown, &job.reply);
    }
}

impl CircuitServer {
    /// Starts the scheduler thread with a fresh `threads`-worker
    /// [`GateBatchPool`] over `key` and the default (unbounded)
    /// [`ServerConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn start<E>(key: Arc<ServerKey<E>>, threads: usize) -> Self
    where
        E: FftEngine + Send + Sync + 'static,
    {
        Self::start_with(key, threads, ServerConfig::default())
    }

    /// Starts the scheduler with explicit admission bounds.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn start_with<E>(key: Arc<ServerKey<E>>, threads: usize, config: ServerConfig) -> Self
    where
        E: FftEngine + Send + Sync + 'static,
    {
        Self::launch(key, threads, config, analyze::simplify, None)
    }

    /// Starts the scheduler with a custom [`RewritePass`] in place of the
    /// default [`analyze::simplify`]. Under
    /// [`AnalysisPolicy::require_equivalence`] the pass's output is only
    /// ever scheduled behind a BDD proof of function identity with the
    /// submission — this is the hook a future optimization pass (e.g.
    /// multi-input gate fusion) plugs into, and the hook the equivalence
    /// tests drive with a deliberately broken pass.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn start_with_rewrite<E>(
        key: Arc<ServerKey<E>>,
        threads: usize,
        config: ServerConfig,
        rewrite: RewritePass,
    ) -> Self
    where
        E: FftEngine + Send + Sync + 'static,
    {
        Self::launch(key, threads, config, rewrite, None)
    }

    /// Starts the scheduler with a scripted [`FaultPlan`] wired into the
    /// pool workers — the deterministic fault-injection harness. Fault
    /// sites are keyed `(admission sequence number, node)`; admission
    /// numbers are assigned 0, 1, 2, … in queue order. Intended for
    /// robustness tests; a production server uses
    /// [`CircuitServer::start`] / [`CircuitServer::start_with`].
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn start_with_faults<E>(
        key: Arc<ServerKey<E>>,
        threads: usize,
        config: ServerConfig,
        faults: Arc<FaultPlan>,
    ) -> Self
    where
        E: FftEngine + Send + Sync + 'static,
    {
        Self::launch(key, threads, config, analyze::simplify, Some(faults))
    }

    fn launch<E>(
        key: Arc<ServerKey<E>>,
        threads: usize,
        config: ServerConfig,
        rewrite: RewritePass,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self
    where
        E: FftEngine + Send + Sync + 'static,
    {
        assert!(threads > 0, "need at least one worker");
        let params = *key.params();
        let default_deadline = config.default_deadline;
        let (tx, rx) = mpsc::channel::<Msg>();
        let stats = Arc::new(StatsCells::default());
        let cells = Arc::clone(&stats);
        let scheduler = std::thread::spawn(move || {
            scheduler_loop(key, threads, rx, cells, config, rewrite, faults)
        });
        Self {
            tx,
            scheduler: Some(scheduler),
            stats,
            params,
            default_deadline,
            next_client: AtomicU64::new(0),
        }
    }

    /// The parameter set the server key was generated under — what a
    /// wire session advertises in its handshake, and what client-side
    /// encryption must match.
    pub fn params(&self) -> &ParameterSet {
        &self.params
    }

    /// A new client handle with a fresh client identity (used for quotas
    /// and per-client tallies). Handles are independent and `Send`;
    /// *clone* a handle to submit from several threads as one client, or
    /// call this again for a distinct client.
    pub fn client(&self) -> CircuitClient {
        CircuitClient {
            tx: self.tx.clone(),
            params: self.params,
            id: self.next_client.fetch_add(1, Ordering::Relaxed),
            stats: Arc::clone(&self.stats),
            default_deadline: self.default_deadline,
        }
    }

    /// A snapshot of the scheduler counters: dispatches, tasks, offered
    /// task-slots (the structural utilization measure), the in-flight
    /// high-water mark, outcome counts (completed/faulted/rejected/
    /// expired/cancelled), pool worker restarts, and per-client tallies.
    /// Counters are monotone; use [`SchedulerStats::since`] to measure
    /// one phase of traffic.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            dispatches: self.stats.dispatches.load(Ordering::Relaxed),
            tasks: self.stats.tasks.load(Ordering::Relaxed),
            slots: self.stats.slots.load(Ordering::Relaxed),
            max_in_flight: self.stats.max_in_flight.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            faulted: self.stats.faulted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            expired: self.stats.expired.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            restarts: self.stats.restarts.load(Ordering::Relaxed),
            per_client: self
                .stats
                .per_client
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(&id, &tally)| (id, tally))
                .collect(),
        }
    }

    /// Graceful shutdown: circuits admitted before this call run to
    /// completion and their tickets resolve; submissions racing past it
    /// resolve to [`CircuitOutcome::Rejected`] with
    /// [`RejectReason::Shutdown`]. Blocks until the scheduler (and its
    /// pool workers) have exited.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = scheduler.join();
        }
    }
}

impl Drop for CircuitServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A cloneable submission handle for one [`CircuitServer`]. Each handle
/// from [`CircuitServer::client`] is a distinct client for quota and
/// tally purposes; clones share the identity.
#[derive(Clone)]
pub struct CircuitClient {
    tx: mpsc::Sender<Msg>,
    params: ParameterSet,
    id: u64,
    stats: Arc<StatsCells>,
    default_deadline: Option<Duration>,
}

impl CircuitClient {
    /// This handle's client identity, as it appears in
    /// [`SchedulerStats::per_client`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submits a circuit with its encrypted inputs. Returns immediately
    /// with a ticket; the circuit joins the in-flight set at the
    /// scheduler's next dispatch boundary (subject to the server's
    /// admission bounds) and runs interleaved with everything else in
    /// flight. Malformed submissions — wrong input *count* or a wrong
    /// LWE *dimension* on any input — resolve to
    /// [`CircuitOutcome::Rejected`] with [`RejectReason::InvalidInput`]
    /// without ever being queued: a misbehaving remote client must not be
    /// able to panic a library caller. The server's
    /// [`ServerConfig::default_deadline`], if any, applies.
    pub fn submit(&self, netlist: CircuitNetlist, inputs: Vec<LweCiphertext>) -> PendingCircuit {
        if !self.valid(&netlist, &inputs) {
            return self.reject_invalid();
        }
        let deadline = self.default_deadline.map(|d| Instant::now() + d);
        self.enqueue(netlist, CircuitInputs::Lwe(inputs), deadline)
    }

    /// Submits a circuit whose inputs arrive as packed TRLWE transport
    /// samples ([`packing::pack_bits`] on the client side): sample `k`
    /// carries input slots `k·N .. (k+1)·N` in its coefficients, at 2
    /// torus words per bit on the wire instead of `n + 1`. The scheduler
    /// unpacks each slot at admission — sample-extract plus key switch,
    /// straight into the run's slab — after which the circuit runs
    /// exactly as a per-LWE submission. Malformed submissions — a sample
    /// count other than `ceil(num_inputs / N)` or a wrong ring degree on
    /// any sample — resolve to [`CircuitOutcome::Rejected`] with
    /// [`RejectReason::InvalidInput`] without being queued. The server's
    /// [`ServerConfig::default_deadline`], if any, applies.
    pub fn submit_packed(
        &self,
        netlist: CircuitNetlist,
        samples: Vec<TrlweCiphertext>,
    ) -> PendingCircuit {
        if !self.valid_packed(&netlist, &samples) {
            return self.reject_invalid();
        }
        let deadline = self.default_deadline.map(|d| Instant::now() + d);
        self.enqueue(netlist, CircuitInputs::Packed(samples), deadline)
    }

    /// Like [`CircuitClient::submit`], but bounding the circuit's
    /// wall-clock: if `deadline` elapses before the circuit completes —
    /// while queued or mid-flight — the scheduler abandons its remaining
    /// work and the ticket resolves to [`CircuitOutcome::Expired`] (or
    /// [`RejectReason::DeadlineUnmeetable`] if the deadline had already
    /// passed at admission). Overrides the server's default deadline.
    pub fn submit_with_deadline(
        &self,
        netlist: CircuitNetlist,
        inputs: Vec<LweCiphertext>,
        deadline: Duration,
    ) -> PendingCircuit {
        if !self.valid(&netlist, &inputs) {
            return self.reject_invalid();
        }
        self.enqueue(
            netlist,
            CircuitInputs::Lwe(inputs),
            Some(Instant::now() + deadline),
        )
    }

    /// [`CircuitClient::submit`] without the boundary validation — the
    /// hot path for trusted in-process callers that constructed their
    /// inputs against the server key. A malformed submission here is not
    /// rejected: it faults its own circuit at admission or in a worker
    /// ([`CircuitOutcome::Faulted`]), with the server unaffected.
    pub fn submit_unchecked(
        &self,
        netlist: CircuitNetlist,
        inputs: Vec<LweCiphertext>,
    ) -> PendingCircuit {
        let deadline = self.default_deadline.map(|d| Instant::now() + d);
        self.enqueue(netlist, CircuitInputs::Lwe(inputs), deadline)
    }

    fn valid(&self, netlist: &CircuitNetlist, inputs: &[LweCiphertext]) -> bool {
        inputs.len() == netlist.num_inputs()
            && inputs
                .iter()
                .all(|i| i.dimension() == self.params.lwe_dimension)
    }

    fn valid_packed(&self, netlist: &CircuitNetlist, samples: &[TrlweCiphertext]) -> bool {
        let n = self.params.ring_degree;
        samples.len() == netlist.num_inputs().div_ceil(n)
            && samples.iter().all(|s| s.ring_degree() == n)
    }

    /// Resolves an `InvalidInput` rejection immediately, tallying it
    /// against this client without touching the scheduler queue.
    fn reject_invalid(&self) -> PendingCircuit {
        let (reply, rx) = mpsc::channel();
        self.stats
            .reject(self.id, RejectReason::InvalidInput, &reply);
        PendingCircuit {
            rx,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    fn enqueue(
        &self,
        netlist: CircuitNetlist,
        inputs: CircuitInputs,
        deadline: Option<Instant>,
    ) -> PendingCircuit {
        let (reply, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        // A send to a shut-down server is not an error here; the ticket
        // resolves through the dropped-sender backstop in `wait`.
        let _ = self.tx.send(Msg::Job(Box::new(CircuitJob {
            netlist,
            inputs,
            reply,
            client: self.id,
            deadline,
            cancel: Arc::clone(&cancel),
        })));
        PendingCircuit { rx, cancel }
    }
}

/// A ticket for one submitted circuit. Every ticket resolves to exactly
/// one [`CircuitOutcome`].
pub struct PendingCircuit {
    rx: mpsc::Receiver<CircuitOutcome>,
    cancel: Arc<AtomicBool>,
}

impl PendingCircuit {
    /// Blocks until the circuit has resolved to its [`CircuitOutcome`].
    ///
    /// A reply sender dropped without an outcome — the scheduler died
    /// abruptly or the submission never reached a live server — resolves
    /// to [`CircuitOutcome::Rejected`] with [`RejectReason::Shutdown`];
    /// a graceful [`CircuitServer::shutdown`] sends that same outcome
    /// explicitly for every queued-but-unadmitted circuit, so `Shutdown`
    /// always means "the server went away", never "the queue was full"
    /// (that is [`RejectReason::QueueFull`]).
    pub fn wait(self) -> CircuitOutcome {
        self.rx
            .recv()
            .unwrap_or(CircuitOutcome::Rejected(RejectReason::Shutdown))
    }

    /// Non-blocking probe: `None` while the circuit is still queued or
    /// in flight, `Some` once it has resolved. A disconnected reply
    /// channel maps to [`RejectReason::Shutdown`] exactly as in
    /// [`PendingCircuit::wait`].
    pub fn try_wait(&self) -> Option<CircuitOutcome> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                Some(CircuitOutcome::Rejected(RejectReason::Shutdown))
            }
        }
    }

    /// Requests cancellation: the scheduler checks the flag at admission
    /// and between dispatches, abandons the circuit's remaining work and
    /// resolves the ticket to [`CircuitOutcome::Cancelled`]. Best-effort
    /// — a circuit that completes (or faults) before the flag is
    /// observed resolves with that outcome instead; either way the
    /// ticket resolves exactly once.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitNetlist;
    use crate::faults::FaultAction;
    use crate::gates::Gate;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (ClientKey, Arc<ServerKey<F64Fft>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        (client, server, rng)
    }

    /// `len`-gate XOR chain over `len + 1` inputs; gate nodes are
    /// `2, 4, 6, …` (odd-indexed nodes are the later inputs), which is
    /// what fault sites target.
    fn xor_chain(len: usize) -> CircuitNetlist {
        let mut net = CircuitNetlist::new();
        let mut acc = net.input();
        for _ in 0..len {
            let next = net.input();
            acc = net.gate(Gate::Xor, acc, next);
        }
        net.mark_output(acc);
        net
    }

    fn encrypt_bits(client: &ClientKey, bits: &[bool], rng: &mut StdRng) -> Vec<LweCiphertext> {
        bits.iter().map(|&b| client.encrypt_with(b, rng)).collect()
    }

    fn xor_all(bits: &[bool]) -> bool {
        bits.iter().fold(false, |a, &b| a ^ b)
    }

    #[test]
    fn serves_a_single_circuit() {
        let (client, key, mut rng) = setup(140);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let net = xor_chain(3);
        let bits = [true, false, true, true];
        let run = server
            .client()
            .submit(net, encrypt_bits(&client, &bits, &mut rng))
            .wait()
            .completed()
            .expect("server live");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&bits));
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.tasks, 3, "three XOR gates dispatched");
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
        assert_eq!(stats.restarts, 0);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_ordered_results() {
        let (client, key, mut rng) = setup(141);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        // Two client threads, each submitting 3 circuits with distinct
        // expected answers; each must observe its own results in
        // submission order.
        let jobs_per_client = 3;
        let mut expected: Vec<Vec<bool>> = Vec::new();
        let mut encrypted: Vec<Vec<Vec<LweCiphertext>>> = Vec::new();
        for c in 0..2 {
            let mut per_client_expected = Vec::new();
            let mut per_client_inputs = Vec::new();
            for j in 0..jobs_per_client {
                let bits = [c == 0, j % 2 == 0, j == 1];
                per_client_expected.push(xor_all(&bits));
                per_client_inputs.push(encrypt_bits(&client, &bits, &mut rng));
            }
            expected.push(per_client_expected);
            encrypted.push(per_client_inputs);
        }
        let results: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = encrypted
                .into_iter()
                .map(|inputs| {
                    let handle = server.client();
                    scope.spawn(move || {
                        let tickets: Vec<PendingCircuit> = inputs
                            .into_iter()
                            .map(|i| handle.submit(xor_chain(2), i))
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().completed().expect("server live"))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .map(|runs| runs.iter().map(|r| client.decrypt(&r.outputs[0])).collect())
                .collect()
        });
        assert_eq!(results, expected);
        server.shutdown();
    }

    #[test]
    fn interleaves_circuits_and_reports_in_flight_high_water() {
        let (client, key, mut rng) = setup(147);
        // Hold the deep circuit's first gate (tag 0, node 2) on a scripted
        // delay so the short submissions are guaranteed to be admitted
        // while it is still in flight — without the delay this races the
        // scheduler under a loaded test host.
        let faults = FaultPlan::new().inject(0, 2, FaultAction::Delay(Duration::from_millis(100)));
        let server = CircuitServer::start_with_faults(
            Arc::clone(&key),
            2,
            ServerConfig::default(),
            Arc::new(faults),
        );
        let handle = server.client();
        // A deep chain first: while its first wave runs, the two short
        // circuits are admitted and ride the subsequent super-waves.
        let deep_bits = [true, false, true, true, false, true, false];
        let deep = handle.submit(xor_chain(6), encrypt_bits(&client, &deep_bits, &mut rng));
        let shorts: Vec<PendingCircuit> = (0..2)
            .map(|i| {
                let bits = [i == 0, true];
                handle.submit(xor_chain(1), encrypt_bits(&client, &bits, &mut rng))
            })
            .collect();
        for (i, short) in shorts.into_iter().enumerate() {
            let run = short.wait().completed().expect("short circuit completes");
            assert_eq!(client.decrypt(&run.outputs[0]), i != 0);
        }
        let run = deep.wait().completed().expect("deep circuit completes");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&deep_bits));
        let stats = server.stats();
        assert!(
            stats.max_in_flight >= 2,
            "short circuits must have been in flight with the deep one (high water {})",
            stats.max_in_flight
        );
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.tasks, 6 + 1 + 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_completes_queued_jobs_and_rejects_later_ones() {
        let (client, key, mut rng) = setup(142);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let handle = server.client();
        let pending: Vec<PendingCircuit> = (0..3)
            .map(|i| {
                let bits = [i == 0, i == 1, i == 2];
                handle.submit(xor_chain(2), encrypt_bits(&client, &bits, &mut rng))
            })
            .collect();
        server.shutdown(); // blocks until every admitted circuit resolved
        for (i, ticket) in pending.into_iter().enumerate() {
            let run = ticket
                .wait()
                .completed()
                .unwrap_or_else(|| panic!("job {i} was queued before shutdown and must complete"));
            assert!(client.decrypt(&run.outputs[0]), "job {i}");
        }
        // Submissions after shutdown resolve to a structured Shutdown
        // rejection instead of hanging — distinct from QueueFull.
        let late = handle.submit(
            xor_chain(1),
            encrypt_bits(&client, &[true, false], &mut rng),
        );
        let outcome = late.wait();
        assert!(outcome.is_rejected());
        assert_eq!(outcome.reject_reason(), Some(RejectReason::Shutdown));
    }

    #[test]
    fn faulted_circuit_resolves_faulted_and_server_survives() {
        let (client, key, mut rng) = setup(145);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let handle = server.client();
        // `submit` validates dimensions now, so smuggle the malformed
        // input past it with `submit_unchecked`, as a buggy trusted
        // caller would: the task panics inside a pool worker and must
        // fault only its own circuit.
        let bad = handle.submit_unchecked(
            xor_chain(1),
            vec![
                client.encrypt_with(true, &mut rng),
                LweCiphertext::trivial(matcha_math::Torus32::ZERO, 3),
            ],
        );
        let outcome = bad.wait();
        let CircuitOutcome::Faulted(msg) = outcome else {
            panic!("wrong-dimension circuit must fault, got {outcome:?}");
        };
        assert!(!msg.is_empty(), "fault carries the panic message");
        // …while the server keeps serving everyone else.
        let good = handle.submit(
            xor_chain(1),
            encrypt_bits(&client, &[true, false], &mut rng),
        );
        let run = good
            .wait()
            .completed()
            .expect("server must survive a faulted circuit");
        assert!(client.decrypt(&run.outputs[0]));
        assert_eq!(server.stats().faulted, 1);
        server.shutdown();
    }

    #[test]
    fn fault_spares_interleaved_neighbors() {
        let (client, key, mut rng) = setup(148);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let handle = server.client();
        // A healthy deep circuit is in flight when a malformed one joins
        // the same super-waves; the fault must not touch it.
        let bits = [true, true, false, true, false];
        let healthy = handle.submit(xor_chain(4), encrypt_bits(&client, &bits, &mut rng));
        let bad = handle.submit_unchecked(
            xor_chain(1),
            vec![
                client.encrypt_with(true, &mut rng),
                LweCiphertext::trivial(matcha_math::Torus32::ZERO, 3),
            ],
        );
        assert!(bad.wait().is_faulted());
        let run = healthy
            .wait()
            .completed()
            .expect("healthy neighbor completes");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&bits));
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn start_rejects_zero_threads() {
        let (_, key, _) = setup(146);
        let _ = CircuitServer::start(key, 0);
    }

    #[test]
    fn submit_rejects_wrong_input_count() {
        let (client, key, mut rng) = setup(143);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        // Wrong count: a structured client-side rejection, not a panic —
        // a misbehaving remote client must not crash a library caller.
        let pending = server
            .client()
            .submit(xor_chain(2), vec![client.encrypt_with(true, &mut rng)]);
        assert_eq!(
            pending.wait().reject_reason(),
            Some(RejectReason::InvalidInput)
        );
        assert_eq!(server.stats().rejected, 1);
        server.shutdown();
    }

    #[test]
    fn submit_rejects_wrong_input_dimension() {
        let (client, key, mut rng) = setup(149);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        // Right count, wrong dimension: rejected at the API boundary,
        // before the circuit ever reaches a worker.
        let pending = server.client().submit(
            xor_chain(1),
            vec![
                client.encrypt_with(true, &mut rng),
                LweCiphertext::trivial(matcha_math::Torus32::ZERO, 3),
            ],
        );
        assert_eq!(
            pending.wait().reject_reason(),
            Some(RejectReason::InvalidInput)
        );
        assert_eq!(server.stats().faulted, 0, "never reached a worker");
        server.shutdown();
    }

    #[test]
    fn dropping_server_joins_scheduler_and_pool() {
        let (client, key, mut rng) = setup(144);
        {
            let server = CircuitServer::start(Arc::clone(&key), 2);
            let run = server
                .client()
                .submit(xor_chain(1), encrypt_bits(&client, &[true, true], &mut rng))
                .wait()
                .completed()
                .expect("server live");
            assert!(!client.decrypt(&run.outputs[0]));
        } // drop == graceful shutdown
        assert_eq!(
            Arc::strong_count(&key),
            1,
            "scheduler and pool workers must all have exited"
        );
    }

    #[test]
    fn empty_netlist_completes_immediately() {
        let (_, key, _) = setup(150);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let net = CircuitNetlist::new();
        let run = server
            .client()
            .submit(net, Vec::new())
            .wait()
            .completed()
            .expect("empty circuit completes");
        assert!(run.outputs.is_empty());
        assert_eq!(run.scheduled_ops, 0);
        server.shutdown();
    }

    #[test]
    fn queue_overflow_rejects_with_queue_full() {
        let (client, key, mut rng) = setup(151);
        // Hold the first circuit in flight across several admission
        // drains by delaying its first gate (tag 0, node 2): any circuit
        // admitted meanwhile sees a full queue.
        let plan =
            Arc::new(FaultPlan::new().inject(0, 2, FaultAction::Delay(Duration::from_millis(150))));
        let config = ServerConfig {
            queue_depth: 1,
            ..ServerConfig::default()
        };
        let server = CircuitServer::start_with_faults(Arc::clone(&key), 1, config, plan);
        let handle = server.client();
        let first_bits = [true, false, true];
        let first = handle.submit(xor_chain(2), encrypt_bits(&client, &first_bits, &mut rng));
        let overflow = handle.submit(
            xor_chain(2),
            encrypt_bits(&client, &[true, true, false], &mut rng),
        );
        assert_eq!(
            overflow.wait().reject_reason(),
            Some(RejectReason::QueueFull)
        );
        let run = first.wait().completed().expect("first circuit unaffected");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&first_bits));
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn quota_breach_rejects_heavy_client_and_spares_light_one() {
        let (client, key, mut rng) = setup(152);
        let plan =
            Arc::new(FaultPlan::new().inject(0, 2, FaultAction::Delay(Duration::from_millis(150))));
        let config = ServerConfig {
            per_client_quota: 1,
            ..ServerConfig::default()
        };
        let server = CircuitServer::start_with_faults(Arc::clone(&key), 1, config, plan);
        let heavy = server.client();
        let light = server.client();
        let first_bits = [true, false, true];
        let light_bits = [false, true];
        // The heavy client's first circuit is held in flight by the
        // delayed gate; its second breaches the quota, while the light
        // client's submission is admitted and completes.
        let first = heavy.submit(xor_chain(2), encrypt_bits(&client, &first_bits, &mut rng));
        let second = heavy.submit(
            xor_chain(2),
            encrypt_bits(&client, &[false, false, true], &mut rng),
        );
        let light_ticket = light.submit(xor_chain(1), encrypt_bits(&client, &light_bits, &mut rng));
        assert_eq!(
            second.wait().reject_reason(),
            Some(RejectReason::QuotaExceeded)
        );
        let light_run = light_ticket
            .wait()
            .completed()
            .expect("light client is not starved by the heavy one");
        assert_eq!(client.decrypt(&light_run.outputs[0]), xor_all(&light_bits));
        let run = first.wait().completed().expect("first circuit unaffected");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&first_bits));
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 2);
        server.shutdown();
    }

    #[test]
    fn already_passed_deadline_is_unmeetable() {
        let (client, key, mut rng) = setup(153);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let pending = server.client().submit_with_deadline(
            xor_chain(1),
            encrypt_bits(&client, &[true, false], &mut rng),
            Duration::ZERO,
        );
        assert_eq!(
            pending.wait().reject_reason(),
            Some(RejectReason::DeadlineUnmeetable)
        );
        assert_eq!(server.stats().rejected, 1);
        server.shutdown();
    }

    #[test]
    fn deadline_expiry_mid_flight_spares_concurrent_circuits() {
        let (client, key, mut rng) = setup(154);
        // The victim's first gate (tag 0, node 2) takes 400 ms against a
        // 120 ms deadline, so it *cannot* finish in time; the reap after
        // that wave resolves it Expired. The bystander shares the
        // super-waves and must complete bit-identical to the eager
        // sequential execution.
        let plan =
            Arc::new(FaultPlan::new().inject(0, 2, FaultAction::Delay(Duration::from_millis(400))));
        let server =
            CircuitServer::start_with_faults(Arc::clone(&key), 2, ServerConfig::default(), plan);
        let victim_client = server.client();
        let bystander_client = server.client();
        let victim = victim_client.submit_with_deadline(
            xor_chain(2),
            encrypt_bits(&client, &[true, true, false], &mut rng),
            Duration::from_millis(120),
        );
        let net = xor_chain(2);
        let bystander_inputs = encrypt_bits(&client, &[true, false, true], &mut rng);
        let bystander = bystander_client.submit(net.clone(), bystander_inputs.clone());
        assert!(victim.wait().is_expired(), "the delayed circuit expires");
        let run = bystander
            .wait()
            .completed()
            .expect("bystander survives its neighbor's expiry");
        let sequential = net.execute_sequential(key.as_ref(), &bystander_inputs);
        assert_eq!(
            run.outputs, sequential.outputs,
            "bystander is bit-identical to eager execution"
        );
        let stats = server.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn cancel_resolves_cancelled_and_server_keeps_serving() {
        let (client, key, mut rng) = setup(155);
        let plan =
            Arc::new(FaultPlan::new().inject(0, 2, FaultAction::Delay(Duration::from_millis(250))));
        let server =
            CircuitServer::start_with_faults(Arc::clone(&key), 1, ServerConfig::default(), plan);
        let handle = server.client();
        let victim = handle.submit(
            xor_chain(2),
            encrypt_bits(&client, &[true, false, true], &mut rng),
        );
        // The flag is set while the victim is queued or inside its
        // delayed first wave; the scheduler observes it at admission or
        // at the next reap — both resolve Cancelled before wave two.
        victim.cancel();
        assert!(victim.wait().is_cancelled());
        assert_eq!(server.stats().cancelled, 1);
        // The scheduler keeps serving afterwards.
        let bits = [true, true];
        let run = handle
            .submit(xor_chain(1), encrypt_bits(&client, &bits, &mut rng))
            .wait()
            .completed()
            .expect("server live after a cancellation");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&bits));
        server.shutdown();
    }

    #[test]
    fn worker_death_heals_and_circuit_completes() {
        let (client, key, mut rng) = setup(156);
        // Kill the worker picking up the first gate: the pool must
        // respawn it, retry the task, and the circuit still completes —
        // with the restart surfaced in the scheduler stats.
        let plan = Arc::new(FaultPlan::new().inject(0, 2, FaultAction::KillWorker));
        let server =
            CircuitServer::start_with_faults(Arc::clone(&key), 2, ServerConfig::default(), plan);
        let bits = [true, false, true];
        let run = server
            .client()
            .submit(xor_chain(2), encrypt_bits(&client, &bits, &mut rng))
            .wait()
            .completed()
            .expect("circuit completes despite the worker death");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&bits));
        let stats = server.stats();
        assert!(
            stats.restarts >= 1,
            "the respawn is surfaced (restarts = {})",
            stats.restarts
        );
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.faulted, 0, "a healed death is not a fault");
        server.shutdown();
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let newer = SchedulerStats {
            dispatches: 10,
            tasks: 40,
            slots: 48,
            max_in_flight: 3,
            completed: 5,
            faulted: 1,
            rejected: 2,
            expired: 1,
            cancelled: 1,
            restarts: 1,
            per_client: vec![(
                0,
                ClientTally {
                    completed: 5,
                    rejected: 2,
                },
            )],
        };
        let older = SchedulerStats {
            dispatches: 4,
            tasks: 16,
            slots: 20,
            max_in_flight: 2,
            completed: 2,
            faulted: 0,
            rejected: 1,
            expired: 0,
            cancelled: 0,
            restarts: 0,
            per_client: vec![(
                0,
                ClientTally {
                    completed: 2,
                    rejected: 1,
                },
            )],
        };
        let delta = newer.since(&older);
        assert_eq!(delta.dispatches, 6);
        assert_eq!(delta.completed, 3);
        assert_eq!(delta.per_client[0].1.completed, 3);
        // Feeding the snapshots in the wrong order must yield zeros, not
        // a debug-build underflow panic (racy snapshots can look exactly
        // like this).
        let reversed = older.since(&newer);
        assert_eq!(reversed.dispatches, 0);
        assert_eq!(reversed.tasks, 0);
        assert_eq!(reversed.slots, 0);
        assert_eq!(reversed.completed, 0);
        assert_eq!(reversed.faulted, 0);
        assert_eq!(reversed.rejected, 0);
        assert_eq!(reversed.expired, 0);
        assert_eq!(reversed.cancelled, 0);
        assert_eq!(reversed.restarts, 0);
        assert_eq!(reversed.per_client[0].1, ClientTally::default());
    }

    #[test]
    fn per_client_tallies_track_completed_and_rejected() {
        let (client, key, mut rng) = setup(157);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let a = server.client();
        let b = server.client();
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        for _ in 0..2 {
            let bits = [true, false];
            let run = a
                .submit(xor_chain(1), encrypt_bits(&client, &bits, &mut rng))
                .wait()
                .completed()
                .expect("server live");
            assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&bits));
        }
        let bad = b.submit(xor_chain(2), vec![client.encrypt_with(true, &mut rng)]);
        assert_eq!(bad.wait().reject_reason(), Some(RejectReason::InvalidInput));
        let stats = server.stats();
        assert_eq!(
            stats.per_client,
            vec![
                (
                    0,
                    ClientTally {
                        completed: 2,
                        rejected: 0
                    }
                ),
                (
                    1,
                    ClientTally {
                        completed: 0,
                        rejected: 1
                    }
                ),
            ]
        );
        server.shutdown();
    }

    #[test]
    fn analysis_policy_rejects_malformed_netlist_with_lint_reason() {
        let (client, key, mut rng) = setup(170);
        let config = ServerConfig {
            analysis: Some(AnalysisPolicy::default()),
            ..ServerConfig::default()
        };
        let server = CircuitServer::start_with(Arc::clone(&key), 1, config);
        let handle = server.client();
        // A netlist burning a bootstrap on a node no output depends on.
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let live = net.gate(Gate::Xor, a, b);
        let dead = net.gate(Gate::And, a, b);
        net.mark_output(live);
        let ticket = handle.submit(net, encrypt_bits(&client, &[true, false], &mut rng));
        assert_eq!(
            ticket.wait().reject_reason(),
            Some(RejectReason::Lint {
                kind: LintKind::DeadNode,
                node: dead
            })
        );
        assert_eq!(server.stats().rejected, 1);
        server.shutdown();
    }

    #[test]
    fn analysis_policy_rejects_over_budget_circuit_with_noise_bound() {
        // Deliberately noisy gate-level samples: the key-switching key's
        // N·t fresh-noise contributions push the analytic per-output
        // failure bound far past any sane budget. Keys still generate —
        // the point is that admission rejects before a bootstrap runs.
        let params = ParameterSet {
            lwe_noise_stdev: 5e-3,
            ..ParameterSet::TEST_FAST
        };
        let mut rng = StdRng::seed_from_u64(171);
        let client = ClientKey::generate(params, &mut rng);
        let key = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let config = ServerConfig {
            analysis: Some(AnalysisPolicy::default()),
            ..ServerConfig::default()
        };
        let server = CircuitServer::start_with(Arc::clone(&key), 1, config);
        let handle = server.client();
        let ticket = handle.submit(
            xor_chain(2),
            encrypt_bits(&client, &[true, false, true], &mut rng),
        );
        match ticket.wait().reject_reason() {
            Some(RejectReason::NoiseBudget {
                output,
                bound,
                budget,
            }) => {
                assert_eq!(output, 0);
                assert!(bound > budget, "bound {bound} must exceed budget {budget}");
                assert_eq!(budget, crate::analyze::DEFAULT_FAILURE_BUDGET);
            }
            other => panic!("expected a noise-budget rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn analysis_policy_admits_clean_circuits_and_denies_warnings_when_strict() {
        let (client, key, mut rng) = setup(172);
        // Default policy: a clean circuit runs to completion.
        let config = ServerConfig {
            analysis: Some(AnalysisPolicy::default()),
            ..ServerConfig::default()
        };
        let server = CircuitServer::start_with(Arc::clone(&key), 1, config);
        let handle = server.client();
        let bits = [true, false, true];
        let run = handle
            .submit(xor_chain(2), encrypt_bits(&client, &bits, &mut rng))
            .wait()
            .completed()
            .expect("clean circuit admitted and completed");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&bits));
        server.shutdown();

        // Strict policy: a warning-level (constant-foldable) circuit is
        // turned away with the structured lint.
        let strict = ServerConfig {
            analysis: Some(AnalysisPolicy {
                deny: crate::analyze::Severity::Warning,
                ..AnalysisPolicy::default()
            }),
            ..ServerConfig::default()
        };
        let server = CircuitServer::start_with(Arc::clone(&key), 1, strict);
        let handle = server.client();
        let mut net = CircuitNetlist::new();
        let x = net.input();
        let t = net.constant(true);
        let g = net.gate(Gate::And, x, t);
        net.mark_output(g);
        let ticket = handle.submit(net, encrypt_bits(&client, &[true], &mut rng));
        assert_eq!(
            ticket.wait().reject_reason(),
            Some(RejectReason::Lint {
                kind: LintKind::ConstantFoldable,
                node: g
            })
        );
        server.shutdown();
    }

    /// A [`RewritePass`] that runs the real [`analyze::simplify`] and then
    /// flips the first XOR it finds to XNOR — a deliberately unsound
    /// rewrite the equivalence gate must refute.
    fn broken_pass(net: &CircuitNetlist) -> (CircuitNetlist, SimplifyReport) {
        let (simplified, report) = analyze::simplify(net);
        let mut ops = simplified.ops().to_vec();
        for op in ops.iter_mut() {
            if let crate::circuit::GateOp::Binary(Gate::Xor, a, b) = *op {
                *op = crate::circuit::GateOp::Binary(Gate::Xnor, a, b);
                break;
            }
        }
        let broken = CircuitNetlist::from_parts(ops, simplified.outputs().to_vec())
            .expect("mutated netlist keeps the canonical shape");
        (broken, report)
    }

    fn equiv_policy(deny: crate::analyze::Severity, budget: equiv::EquivBudget) -> ServerConfig {
        ServerConfig {
            analysis: Some(AnalysisPolicy {
                deny,
                require_equivalence: Some(budget),
                ..AnalysisPolicy::default()
            }),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn equiv_policy_schedules_the_proven_simplification() {
        let (client, key, mut rng) = setup(180);
        // Submission: x AND true — one bootstrap as submitted, zero after
        // the (proven) constant fold.
        let mut net = CircuitNetlist::new();
        let x = net.input();
        let t = net.constant(true);
        let g = net.gate(Gate::And, x, t);
        net.mark_output(g);
        let config = equiv_policy(
            crate::analyze::Severity::Error,
            equiv::EquivBudget::default(),
        );
        let server = CircuitServer::start_with(Arc::clone(&key), 1, config);
        let handle = server.client();
        let run = handle
            .submit(net, encrypt_bits(&client, &[true], &mut rng))
            .wait()
            .completed()
            .expect("proven rewrite admitted and completed");
        assert!(client.decrypt(&run.outputs[0]));
        assert_eq!(
            run.bootstraps, 0,
            "the scheduled netlist must be the simplified one"
        );
        server.shutdown();
    }

    #[test]
    fn broken_rewrite_pass_is_refuted_with_a_replayable_counterexample() {
        let (client, key, mut rng) = setup(181);
        let config = equiv_policy(
            crate::analyze::Severity::Error,
            equiv::EquivBudget::default(),
        );
        let server = CircuitServer::start_with_rewrite(Arc::clone(&key), 1, config, broken_pass);
        let handle = server.client();
        let submitted = xor_chain(2);
        let ticket = handle.submit(
            submitted.clone(),
            encrypt_bits(&client, &[true, false, true], &mut rng),
        );
        match ticket.wait().reject_reason() {
            Some(RejectReason::NotEquivalent {
                output,
                counterexample,
            }) => {
                assert_eq!(output, 0);
                // Replay the counterexample through eager evaluation: it
                // must actually distinguish the submission from what the
                // broken pass produced.
                let (broken, _) = broken_pass(&submitted);
                let want = equiv::eval_netlist(&submitted, &counterexample.bits);
                let got = equiv::eval_netlist(&broken, &counterexample.bits);
                assert_ne!(
                    want[output], got[output],
                    "counterexample on {counterexample}"
                );
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
        assert_eq!(server.stats().rejected, 1);
        server.shutdown();
    }

    #[test]
    fn equiv_unknown_rejects_strict_policies_and_admits_lenient_ones() {
        let (client, key, mut rng) = setup(182);
        // An input budget of 1 makes every 3-input check come back
        // Unknown without spending any BDD work.
        let tiny = equiv::EquivBudget {
            max_nodes: 1 << 20,
            max_inputs: 1,
        };
        // Strict (deny: Warning): the unproven rewrite is fatal.
        let server = CircuitServer::start_with(
            Arc::clone(&key),
            1,
            equiv_policy(crate::analyze::Severity::Warning, tiny),
        );
        let handle = server.client();
        let ticket = handle.submit(
            xor_chain(2),
            encrypt_bits(&client, &[true, false, true], &mut rng),
        );
        assert_eq!(
            ticket.wait().reject_reason(),
            Some(RejectReason::Lint {
                kind: LintKind::EquivUnknown,
                node: 0
            })
        );
        server.shutdown();

        // Lenient (deny: Error): the submission runs unrewritten.
        let server = CircuitServer::start_with(
            Arc::clone(&key),
            1,
            equiv_policy(crate::analyze::Severity::Error, tiny),
        );
        let handle = server.client();
        let bits = [true, false, true];
        let run = handle
            .submit(xor_chain(2), encrypt_bits(&client, &bits, &mut rng))
            .wait()
            .completed()
            .expect("unknown equivalence is only a warning by default");
        assert_eq!(client.decrypt(&run.outputs[0]), xor_all(&bits));
        assert_eq!(run.bootstraps, 2, "the submitted netlist ran unrewritten");
        server.shutdown();
    }
}
