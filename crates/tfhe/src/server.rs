//! A std-only circuit-serving front end over the persistent batch pool.
//!
//! The north-star serving story: many clients submit whole encrypted
//! circuits, and one scheduler keeps every resident bootstrapping worker
//! busy on the dependent gate workload — MATCHA's scheduler feeding its
//! eight pipelines, in software. [`CircuitServer`] owns a scheduler
//! thread; the scheduler owns a [`GateBatchPool`] and executes each
//! submitted [`CircuitNetlist`] wave-by-wave. Any number of
//! [`CircuitClient`] handles (cheaply cloneable, `Send`) can submit
//! concurrently over the mpsc job queue; each submission yields a
//! [`PendingCircuit`] ticket, and a client's tickets resolve in its
//! submission order. Shutdown is graceful: jobs queued before
//! [`CircuitServer::shutdown`] still complete, later submissions resolve
//! to `None`.

use crate::batch::GateBatchPool;
use crate::circuit::{CircuitNetlist, CircuitRun};
use crate::gates::ServerKey;
use crate::lwe::LweCiphertext;
use matcha_fft::FftEngine;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One queued circuit execution request.
struct CircuitJob {
    netlist: CircuitNetlist,
    inputs: Vec<LweCiphertext>,
    reply: mpsc::Sender<CircuitRun>,
}

enum Msg {
    Job(Box<CircuitJob>),
    Shutdown,
}

/// A request server executing encrypted circuits on a persistent worker
/// pool. Non-generic: the FFT engine lives entirely inside the scheduler
/// thread.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::circuit::CircuitNetlist;
/// use matcha_tfhe::server::CircuitServer;
/// use matcha_tfhe::{ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let key = Arc::new(ServerKey::new(&client, F64Fft::new(1024), &mut rng));
/// let server = CircuitServer::start(key, 8);
///
/// let mut net = CircuitNetlist::new();
/// let (a, b) = (net.input(), net.input());
/// let nand = net.gate(Gate::Nand, a, b);
/// net.mark_output(nand);
///
/// let handle = server.client();
/// let pending = handle.submit(net, vec![client.encrypt(true), client.encrypt(true)]);
/// let run = pending.wait().expect("server is live");
/// assert!(!client.decrypt(&run.outputs[0]));
/// server.shutdown();
/// ```
pub struct CircuitServer {
    tx: mpsc::Sender<Msg>,
    scheduler: Option<JoinHandle<()>>,
}

impl CircuitServer {
    /// Starts the scheduler thread with a fresh `threads`-worker
    /// [`GateBatchPool`] over `key`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn start<E>(key: Arc<ServerKey<E>>, threads: usize) -> Self
    where
        E: FftEngine + Send + Sync + 'static,
    {
        assert!(threads > 0, "need at least one worker");
        let (tx, rx) = mpsc::channel::<Msg>();
        let scheduler = std::thread::spawn(move || {
            let pool = GateBatchPool::new(key, threads);
            let execute = |job: Box<CircuitJob>| {
                // Fault isolation, one layer up from the pool's: a circuit
                // that panics mid-execution (e.g. operands with a wrong LWE
                // dimension — the pool re-raises worker panics on this
                // thread) must not kill the scheduler for every other
                // client. The pool itself stays healthy across job panics
                // (see `GateBatchPool::run_tasks`), so the scheduler keeps
                // serving; the failed submission's reply sender is dropped
                // and its ticket resolves to `None`.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    job.netlist.execute(&pool, &job.inputs)
                }));
                if let Ok(run) = result {
                    // A client that dropped its ticket discards the result.
                    let _ = job.reply.send(run);
                }
            };
            loop {
                match rx.recv() {
                    Ok(Msg::Job(job)) => execute(job),
                    // Graceful by FIFO: every job submitted before the
                    // Shutdown message was enqueued ahead of it and has
                    // already been executed by the arm above; anything
                    // racing in after it resolves to `None`, exactly as
                    // documented. (No drain here — draining would make
                    // racing submissions nondeterministically succeed.)
                    Ok(Msg::Shutdown) => break,
                    // Server and every client handle dropped.
                    Err(_) => break,
                }
            }
        });
        Self {
            tx,
            scheduler: Some(scheduler),
        }
    }

    /// A new client handle. Handles are independent and `Send`; clone or
    /// call this again for every submitting thread.
    pub fn client(&self) -> CircuitClient {
        CircuitClient {
            tx: self.tx.clone(),
        }
    }

    /// Graceful shutdown: circuits submitted before this call complete and
    /// their tickets resolve; submissions racing past it resolve to `None`.
    /// Blocks until the scheduler (and its pool workers) have exited.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = scheduler.join();
        }
    }
}

impl Drop for CircuitServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A cloneable submission handle for one [`CircuitServer`].
#[derive(Clone)]
pub struct CircuitClient {
    tx: mpsc::Sender<Msg>,
}

impl CircuitClient {
    /// Submits a circuit with its encrypted inputs. Returns immediately
    /// with a ticket; results for a given client arrive in submission
    /// order. Input-count mismatches are rejected here, before queueing.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != netlist.num_inputs()`.
    pub fn submit(&self, netlist: CircuitNetlist, inputs: Vec<LweCiphertext>) -> PendingCircuit {
        assert_eq!(
            inputs.len(),
            netlist.num_inputs(),
            "circuit expects {} inputs, got {}",
            netlist.num_inputs(),
            inputs.len()
        );
        let (reply, rx) = mpsc::channel();
        // A send to a shut-down server is not an error here; the ticket
        // resolves to `None` instead.
        let _ = self.tx.send(Msg::Job(Box::new(CircuitJob {
            netlist,
            inputs,
            reply,
        })));
        PendingCircuit { rx }
    }
}

/// A ticket for one submitted circuit.
pub struct PendingCircuit {
    rx: mpsc::Receiver<CircuitRun>,
}

impl PendingCircuit {
    /// Blocks until the circuit has executed. Returns `None` when the
    /// server shut down before running it, or when the circuit itself
    /// panicked during execution (e.g. operands of the wrong LWE
    /// dimension) — the server survives either way.
    pub fn wait(self) -> Option<CircuitRun> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitNetlist;
    use crate::gates::Gate;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (ClientKey, Arc<ServerKey<F64Fft>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        (client, server, rng)
    }

    fn xor_chain(len: usize) -> CircuitNetlist {
        let mut net = CircuitNetlist::new();
        let mut acc = net.input();
        for _ in 0..len {
            let next = net.input();
            acc = net.gate(Gate::Xor, acc, next);
        }
        net.mark_output(acc);
        net
    }

    #[test]
    fn serves_a_single_circuit() {
        let (client, key, mut rng) = setup(140);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let net = xor_chain(3);
        let bits = [true, false, true, true];
        let inputs: Vec<_> = bits
            .iter()
            .map(|&b| client.encrypt_with(b, &mut rng))
            .collect();
        let run = server
            .client()
            .submit(net, inputs)
            .wait()
            .expect("server live");
        assert_eq!(
            client.decrypt(&run.outputs[0]),
            bits.iter().fold(false, |a, &b| a ^ b)
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_ordered_results() {
        let (client, key, mut rng) = setup(141);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        // Two client threads, each submitting 3 circuits with distinct
        // expected answers; each must observe its own results in
        // submission order.
        let jobs_per_client = 3;
        let mut expected: Vec<Vec<bool>> = Vec::new();
        let mut encrypted: Vec<Vec<Vec<LweCiphertext>>> = Vec::new();
        for c in 0..2 {
            let mut per_client_expected = Vec::new();
            let mut per_client_inputs = Vec::new();
            for j in 0..jobs_per_client {
                let bits = [c == 0, j % 2 == 0, j == 1];
                per_client_expected.push(bits.iter().fold(false, |a, &b| a ^ b));
                per_client_inputs.push(
                    bits.iter()
                        .map(|&b| client.encrypt_with(b, &mut rng))
                        .collect(),
                );
            }
            expected.push(per_client_expected);
            encrypted.push(per_client_inputs);
        }
        let results: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = encrypted
                .into_iter()
                .map(|inputs| {
                    let handle = server.client();
                    scope.spawn(move || {
                        let tickets: Vec<PendingCircuit> = inputs
                            .into_iter()
                            .map(|i| handle.submit(xor_chain(2), i))
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().expect("server live"))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .map(|runs| runs.iter().map(|r| client.decrypt(&r.outputs[0])).collect())
                .collect()
        });
        assert_eq!(results, expected);
        server.shutdown();
    }

    #[test]
    fn shutdown_completes_queued_jobs_and_rejects_later_ones() {
        let (client, key, mut rng) = setup(142);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let handle = server.client();
        let pending: Vec<PendingCircuit> = (0..3)
            .map(|i| {
                let bits = [i == 0, i == 1, i == 2];
                handle.submit(
                    xor_chain(2),
                    bits.iter()
                        .map(|&b| client.encrypt_with(b, &mut rng))
                        .collect(),
                )
            })
            .collect();
        server.shutdown(); // blocks until the scheduler drained the queue
        for (i, ticket) in pending.into_iter().enumerate() {
            let run = ticket
                .wait()
                .unwrap_or_else(|| panic!("job {i} was queued before shutdown and must complete"));
            assert!(client.decrypt(&run.outputs[0]), "job {i}");
        }
        // Submissions after shutdown resolve to None instead of hanging.
        let late = handle.submit(xor_chain(1), {
            vec![
                client.encrypt_with(true, &mut rng),
                client.encrypt_with(false, &mut rng),
            ]
        });
        assert!(late.wait().is_none());
    }

    #[test]
    fn panicking_circuit_resolves_none_and_server_survives() {
        let (client, key, mut rng) = setup(145);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let handle = server.client();
        // Right input *count*, wrong LWE dimension: panics inside a pool
        // worker, is re-raised on the scheduler, and must be contained
        // there — ticket resolves None, server keeps serving everyone.
        let bad = handle.submit(
            xor_chain(1),
            vec![
                client.encrypt_with(true, &mut rng),
                LweCiphertext::trivial(matcha_math::Torus32::ZERO, 3),
            ],
        );
        assert!(bad.wait().is_none(), "failed circuit resolves to None");
        let good = handle.submit(
            xor_chain(1),
            vec![
                client.encrypt_with(true, &mut rng),
                client.encrypt_with(false, &mut rng),
            ],
        );
        let run = good.wait().expect("server must survive a bad circuit");
        assert!(client.decrypt(&run.outputs[0]));
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn start_rejects_zero_threads() {
        let (_, key, _) = setup(146);
        let _ = CircuitServer::start(key, 0);
    }

    #[test]
    #[should_panic(expected = "expects 3 inputs")]
    fn submit_rejects_wrong_input_count() {
        let (client, key, mut rng) = setup(143);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let _ = server
            .client()
            .submit(xor_chain(2), vec![client.encrypt_with(true, &mut rng)]);
        server.shutdown();
    }

    #[test]
    fn dropping_server_joins_scheduler_and_pool() {
        let (client, key, mut rng) = setup(144);
        {
            let server = CircuitServer::start(Arc::clone(&key), 2);
            let run = server
                .client()
                .submit(
                    xor_chain(1),
                    vec![
                        client.encrypt_with(true, &mut rng),
                        client.encrypt_with(true, &mut rng),
                    ],
                )
                .wait()
                .expect("server live");
            assert!(!client.decrypt(&run.outputs[0]));
        } // drop == graceful shutdown
        assert_eq!(
            Arc::strong_count(&key),
            1,
            "scheduler and pool workers must all have exited"
        );
    }
}
