//! A std-only circuit-serving front end over the persistent batch pool,
//! with **cross-circuit wave interleaving**.
//!
//! The north-star serving story: many clients submit whole encrypted
//! circuits, and one scheduler keeps every resident bootstrapping worker
//! busy on the dependent gate workload — MATCHA's scheduler feeding its
//! eight pipelines, in software. [`CircuitServer`] owns a scheduler
//! thread; the scheduler owns a [`GateBatchPool`] and keeps **every
//! submitted circuit in flight at once**: each pool dispatch is filled
//! with the ready frontier of *all* in-flight circuits (oldest admission
//! first), so a deep, narrow circuit no longer leaves workers idle while
//! other clients queue behind it — the utilization gap the paper's
//! 8-pipeline scheduler closes with dependent-gate interleaving.
//!
//! Any number of [`CircuitClient`] handles (cheaply cloneable, `Send`)
//! can submit concurrently over the mpsc job queue; each submission
//! yields a [`PendingCircuit`] ticket resolving to a [`CircuitOutcome`].
//! Fairness and isolation guarantees:
//!
//! * **FIFO-fair**: circuits are admitted in queue order and each
//!   dispatch takes ready tasks oldest-circuit-first; every in-flight
//!   circuit contributes its whole ready frontier to every dispatch, so
//!   no circuit can starve another.
//! * **Per-client order**: a client's tickets resolve through their own
//!   channels, so waiting on them in submission order always observes
//!   that order, even though a short circuit may *finish* before a long
//!   one submitted earlier.
//! * **Per-circuit fault isolation**: a task that panics in a worker
//!   (e.g. a wrong-dimension operand smuggled past validation) faults
//!   only the circuit that owns it — its ticket resolves to
//!   [`CircuitOutcome::Faulted`] while every other in-flight circuit,
//!   the scheduler, and the pool keep going.
//!
//! Shutdown is graceful: circuits admitted before [`CircuitServer::shutdown`]
//! still run to completion, later submissions resolve to
//! [`CircuitOutcome::Rejected`].

use crate::batch::{panic_message, GateBatchPool, SlabTask};
use crate::circuit::{CircuitFrontier, CircuitNetlist, CircuitRun};
use crate::gates::ServerKey;
use crate::lwe::LweCiphertext;
use matcha_fft::FftEngine;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One queued circuit execution request.
struct CircuitJob {
    netlist: CircuitNetlist,
    inputs: Vec<LweCiphertext>,
    reply: mpsc::Sender<CircuitOutcome>,
}

enum Msg {
    Job(Box<CircuitJob>),
    Shutdown,
}

/// How one submitted circuit ended.
#[derive(Clone, Debug)]
pub enum CircuitOutcome {
    /// The circuit ran to completion.
    Completed(CircuitRun),
    /// The circuit panicked during execution (the message is the panic
    /// payload, e.g. a dimension-mismatch assertion). The server and
    /// every other in-flight circuit keep running.
    Faulted(String),
    /// The server shut down before admitting the circuit; it never ran.
    Rejected,
}

impl CircuitOutcome {
    /// The completed run, if any — `None` for `Faulted`/`Rejected`.
    pub fn completed(self) -> Option<CircuitRun> {
        match self {
            CircuitOutcome::Completed(run) => Some(run),
            CircuitOutcome::Faulted(_) | CircuitOutcome::Rejected => None,
        }
    }

    /// `true` when the circuit ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, CircuitOutcome::Completed(_))
    }

    /// `true` when the circuit panicked during execution.
    pub fn is_faulted(&self) -> bool {
        matches!(self, CircuitOutcome::Faulted(_))
    }

    /// `true` when the server shut down before running the circuit.
    pub fn is_rejected(&self) -> bool {
        matches!(self, CircuitOutcome::Rejected)
    }
}

/// Live scheduler counters, shared with [`CircuitServer::stats`] readers.
#[derive(Default)]
struct StatsCells {
    dispatches: AtomicU64,
    tasks: AtomicU64,
    slots: AtomicU64,
    max_in_flight: AtomicU64,
    completed: AtomicU64,
    faulted: AtomicU64,
}

/// A snapshot of the scheduler's monotone counters.
///
/// `slots` models each non-empty dispatch of `t` tasks on `P` workers as
/// `ceil(t / P)` rounds of `P` task-slots, so
/// [`SchedulerStats::utilization`] — busy task-slots over offered
/// wave-slots — is a *structural* measure of how full the pool's waves
/// run, independent of clock noise: interleaving several circuits fills
/// the narrow tail waves of each with the other circuits' work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Non-empty pool dispatches (interleaved super-waves).
    pub dispatches: u64,
    /// Tasks dispatched across all circuits.
    pub tasks: u64,
    /// Task-slots offered: `Σ ceil(tasks / threads) · threads`.
    pub slots: u64,
    /// High-water mark of circuits simultaneously in flight.
    pub max_in_flight: u64,
    /// Circuits that resolved [`CircuitOutcome::Completed`].
    pub completed: u64,
    /// Circuits that resolved [`CircuitOutcome::Faulted`].
    pub faulted: u64,
}

impl SchedulerStats {
    /// Busy task-slots over offered wave-slots, in `(0, 1]` once any
    /// dispatch ran (0.0 before).
    pub fn utilization(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.tasks as f64 / self.slots as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot, for measuring one
    /// phase of traffic. `max_in_flight` is a high-water mark, not a
    /// counter: the later snapshot's value is kept as-is.
    pub fn since(&self, earlier: &SchedulerStats) -> SchedulerStats {
        SchedulerStats {
            dispatches: self.dispatches - earlier.dispatches,
            tasks: self.tasks - earlier.tasks,
            slots: self.slots - earlier.slots,
            max_in_flight: self.max_in_flight,
            completed: self.completed - earlier.completed,
            faulted: self.faulted - earlier.faulted,
        }
    }
}

/// A request server executing encrypted circuits on a persistent worker
/// pool, interleaving every in-flight circuit's ready wave into each
/// dispatch. Non-generic: the FFT engine lives entirely inside the
/// scheduler thread.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::circuit::CircuitNetlist;
/// use matcha_tfhe::server::CircuitServer;
/// use matcha_tfhe::{ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let key = Arc::new(ServerKey::new(&client, F64Fft::new(1024), &mut rng));
/// let server = CircuitServer::start(key, 8);
///
/// let mut net = CircuitNetlist::new();
/// let (a, b) = (net.input(), net.input());
/// let nand = net.gate(Gate::Nand, a, b);
/// net.mark_output(nand);
///
/// let handle = server.client();
/// let pending = handle.submit(net, vec![client.encrypt(true), client.encrypt(true)]);
/// let run = pending.wait().completed().expect("server is live");
/// assert!(!client.decrypt(&run.outputs[0]));
/// server.shutdown();
/// ```
pub struct CircuitServer {
    tx: mpsc::Sender<Msg>,
    scheduler: Option<JoinHandle<()>>,
    stats: Arc<StatsCells>,
    lwe_dimension: usize,
}

/// One circuit in flight on the scheduler.
struct InFlight {
    frontier: CircuitFrontier,
    reply: mpsc::Sender<CircuitOutcome>,
}

/// Builds a frontier for a freshly admitted job. Admission-time panics
/// (malformed netlists or inputs that slipped past submit-side
/// validation) fault only this circuit, not the scheduler.
fn admit<E>(
    in_flight: &mut Vec<InFlight>,
    job: CircuitJob,
    pool: &GateBatchPool<E>,
    stats: &StatsCells,
) where
    E: FftEngine + Send + Sync + 'static,
{
    let CircuitJob {
        netlist,
        inputs,
        reply,
    } = job;
    match catch_unwind(AssertUnwindSafe(|| {
        CircuitFrontier::new(Arc::new(netlist), pool.server(), &inputs)
    })) {
        Ok(frontier) => {
            in_flight.push(InFlight { frontier, reply });
            stats
                .max_in_flight
                .fetch_max(in_flight.len() as u64, Ordering::Relaxed);
        }
        Err(payload) => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(CircuitOutcome::Faulted(panic_message(payload)));
        }
    }
}

/// The scheduler: admits circuits from the queue, fills every pool
/// dispatch with the ready frontier of all in-flight circuits (oldest
/// first), routes per-task failures to the owning circuit, and resolves
/// tickets as circuits complete or fault.
fn scheduler_loop<E>(
    key: Arc<ServerKey<E>>,
    threads: usize,
    rx: mpsc::Receiver<Msg>,
    stats: Arc<StatsCells>,
) where
    E: FftEngine + Send + Sync + 'static,
{
    let pool = GateBatchPool::new(key, threads);
    let mut in_flight: Vec<InFlight> = Vec::new();
    // Saw Shutdown: finish what is admitted, admit nothing more.
    let mut draining = false;
    let mut batch: Vec<SlabTask> = Vec::new();
    // Parallel to `batch`: index into `in_flight` owning each task.
    let mut owners: Vec<usize> = Vec::new();
    loop {
        // Admission. Block only when idle; with work in flight, drain
        // whatever has queued up between dispatches so new circuits join
        // the very next super-wave.
        if in_flight.is_empty() && !draining {
            match rx.recv() {
                Ok(Msg::Job(job)) => admit(&mut in_flight, *job, &pool, &stats),
                // Graceful by FIFO: every job submitted before the
                // Shutdown message was enqueued ahead of it and already
                // admitted; anything racing in after it resolves to
                // `Rejected` when the queue is dropped below.
                Ok(Msg::Shutdown) | Err(_) => break,
            }
        }
        while !draining {
            match rx.try_recv() {
                Ok(Msg::Job(job)) => admit(&mut in_flight, *job, &pool, &stats),
                Ok(Msg::Shutdown) | Err(TryRecvError::Disconnected) => draining = true,
                Err(TryRecvError::Empty) => break,
            }
        }
        if in_flight.is_empty() {
            if draining {
                break;
            }
            continue;
        }

        // One interleaved super-wave: every in-flight circuit's ready
        // frontier, admission order first — FIFO-fair, and no circuit
        // can monopolize the dispatch because every other circuit's
        // ready tasks ride along.
        batch.clear();
        owners.clear();
        for (ci, fl) in in_flight.iter_mut().enumerate() {
            fl.frontier.take_ready(&mut batch);
            owners.resize(batch.len(), ci);
        }
        let dispatch = pool.run_tasks(&batch);
        if !batch.is_empty() {
            let p = pool.threads() as u64;
            stats.dispatches.fetch_add(1, Ordering::Relaxed);
            stats.tasks.fetch_add(batch.len() as u64, Ordering::Relaxed);
            stats
                .slots
                .fetch_add((batch.len() as u64).div_ceil(p) * p, Ordering::Relaxed);
        }

        // Route failures to their owning circuits (first message wins);
        // propagate completions for everyone still healthy.
        let mut faults: Vec<Option<String>> = vec![None; in_flight.len()];
        for (index, msg) in dispatch.failures {
            let fault = &mut faults[owners[index]];
            if fault.is_none() {
                *fault = Some(msg);
            }
        }
        for (index, st) in batch.iter().enumerate() {
            let ci = owners[index];
            if faults[ci].is_none() {
                in_flight[ci].frontier.complete(st.node);
            }
        }

        // Resolve tickets; keep the rest in flight, order preserved.
        let mut keep: Vec<InFlight> = Vec::with_capacity(in_flight.len());
        for (fl, fault) in in_flight.drain(..).zip(faults) {
            if let Some(msg) = fault {
                stats.faulted.fetch_add(1, Ordering::Relaxed);
                let _ = fl.reply.send(CircuitOutcome::Faulted(msg));
            } else if fl.frontier.is_done() {
                stats.completed.fetch_add(1, Ordering::Relaxed);
                let _ = fl
                    .reply
                    .send(CircuitOutcome::Completed(fl.frontier.finish()));
            } else {
                keep.push(fl);
            }
        }
        in_flight = keep;
    }
    // Dropping `rx` here drops any queued-but-never-admitted jobs: their
    // reply senders close and those tickets resolve to `Rejected`.
}

impl CircuitServer {
    /// Starts the scheduler thread with a fresh `threads`-worker
    /// [`GateBatchPool`] over `key`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn start<E>(key: Arc<ServerKey<E>>, threads: usize) -> Self
    where
        E: FftEngine + Send + Sync + 'static,
    {
        assert!(threads > 0, "need at least one worker");
        let lwe_dimension = key.params().lwe_dimension;
        let (tx, rx) = mpsc::channel::<Msg>();
        let stats = Arc::new(StatsCells::default());
        let cells = Arc::clone(&stats);
        let scheduler = std::thread::spawn(move || scheduler_loop(key, threads, rx, cells));
        Self {
            tx,
            scheduler: Some(scheduler),
            stats,
            lwe_dimension,
        }
    }

    /// A new client handle. Handles are independent and `Send`; clone or
    /// call this again for every submitting thread.
    pub fn client(&self) -> CircuitClient {
        CircuitClient {
            tx: self.tx.clone(),
            lwe_dimension: self.lwe_dimension,
        }
    }

    /// A snapshot of the scheduler counters: dispatches, tasks, offered
    /// task-slots (the structural utilization measure), the in-flight
    /// high-water mark and outcome counts. Counters are monotone; use
    /// [`SchedulerStats::since`] to measure one phase of traffic.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            dispatches: self.stats.dispatches.load(Ordering::Relaxed),
            tasks: self.stats.tasks.load(Ordering::Relaxed),
            slots: self.stats.slots.load(Ordering::Relaxed),
            max_in_flight: self.stats.max_in_flight.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            faulted: self.stats.faulted.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: circuits admitted before this call run to
    /// completion and their tickets resolve; submissions racing past it
    /// resolve to [`CircuitOutcome::Rejected`]. Blocks until the
    /// scheduler (and its pool workers) have exited.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = scheduler.join();
        }
    }
}

impl Drop for CircuitServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A cloneable submission handle for one [`CircuitServer`].
#[derive(Clone)]
pub struct CircuitClient {
    tx: mpsc::Sender<Msg>,
    lwe_dimension: usize,
}

impl CircuitClient {
    /// Submits a circuit with its encrypted inputs. Returns immediately
    /// with a ticket; the circuit joins the in-flight set at the
    /// scheduler's next dispatch boundary and runs interleaved with
    /// everything else in flight. Malformed submissions are rejected
    /// here, before queueing: both the input *count* and each input's
    /// LWE *dimension* are validated, so a wrong-dimension ciphertext
    /// fails fast at the API boundary instead of panicking a worker
    /// mid-execution.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != netlist.num_inputs()`, or if any input's
    /// [`LweCiphertext::dimension`] differs from the server key's LWE
    /// dimension.
    pub fn submit(&self, netlist: CircuitNetlist, inputs: Vec<LweCiphertext>) -> PendingCircuit {
        assert_eq!(
            inputs.len(),
            netlist.num_inputs(),
            "circuit expects {} inputs, got {}",
            netlist.num_inputs(),
            inputs.len()
        );
        for (slot, input) in inputs.iter().enumerate() {
            assert_eq!(
                input.dimension(),
                self.lwe_dimension,
                "input {slot} has LWE dimension {}, the server key expects {}",
                input.dimension(),
                self.lwe_dimension
            );
        }
        let (reply, rx) = mpsc::channel();
        // A send to a shut-down server is not an error here; the ticket
        // resolves to `Rejected` instead.
        let _ = self.tx.send(Msg::Job(Box::new(CircuitJob {
            netlist,
            inputs,
            reply,
        })));
        PendingCircuit { rx }
    }
}

/// A ticket for one submitted circuit.
pub struct PendingCircuit {
    rx: mpsc::Receiver<CircuitOutcome>,
}

impl PendingCircuit {
    /// Blocks until the circuit has resolved: [`CircuitOutcome::Completed`]
    /// with its run, [`CircuitOutcome::Faulted`] when the circuit itself
    /// panicked during execution (the server survives), or
    /// [`CircuitOutcome::Rejected`] when the server shut down before
    /// running it.
    pub fn wait(self) -> CircuitOutcome {
        self.rx.recv().unwrap_or(CircuitOutcome::Rejected)
    }

    /// Non-blocking probe: `None` while the circuit is still queued or
    /// in flight, `Some` once it has resolved.
    pub fn try_wait(&self) -> Option<CircuitOutcome> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(CircuitOutcome::Rejected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitNetlist;
    use crate::gates::Gate;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (ClientKey, Arc<ServerKey<F64Fft>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        (client, server, rng)
    }

    fn xor_chain(len: usize) -> CircuitNetlist {
        let mut net = CircuitNetlist::new();
        let mut acc = net.input();
        for _ in 0..len {
            let next = net.input();
            acc = net.gate(Gate::Xor, acc, next);
        }
        net.mark_output(acc);
        net
    }

    #[test]
    fn serves_a_single_circuit() {
        let (client, key, mut rng) = setup(140);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let net = xor_chain(3);
        let bits = [true, false, true, true];
        let inputs: Vec<_> = bits
            .iter()
            .map(|&b| client.encrypt_with(b, &mut rng))
            .collect();
        let run = server
            .client()
            .submit(net, inputs)
            .wait()
            .completed()
            .expect("server live");
        assert_eq!(
            client.decrypt(&run.outputs[0]),
            bits.iter().fold(false, |a, &b| a ^ b)
        );
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.tasks, 3, "three XOR gates dispatched");
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_ordered_results() {
        let (client, key, mut rng) = setup(141);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        // Two client threads, each submitting 3 circuits with distinct
        // expected answers; each must observe its own results in
        // submission order.
        let jobs_per_client = 3;
        let mut expected: Vec<Vec<bool>> = Vec::new();
        let mut encrypted: Vec<Vec<Vec<LweCiphertext>>> = Vec::new();
        for c in 0..2 {
            let mut per_client_expected = Vec::new();
            let mut per_client_inputs = Vec::new();
            for j in 0..jobs_per_client {
                let bits = [c == 0, j % 2 == 0, j == 1];
                per_client_expected.push(bits.iter().fold(false, |a, &b| a ^ b));
                per_client_inputs.push(
                    bits.iter()
                        .map(|&b| client.encrypt_with(b, &mut rng))
                        .collect(),
                );
            }
            expected.push(per_client_expected);
            encrypted.push(per_client_inputs);
        }
        let results: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = encrypted
                .into_iter()
                .map(|inputs| {
                    let handle = server.client();
                    scope.spawn(move || {
                        let tickets: Vec<PendingCircuit> = inputs
                            .into_iter()
                            .map(|i| handle.submit(xor_chain(2), i))
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().completed().expect("server live"))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .map(|runs| runs.iter().map(|r| client.decrypt(&r.outputs[0])).collect())
                .collect()
        });
        assert_eq!(results, expected);
        server.shutdown();
    }

    #[test]
    fn interleaves_circuits_and_reports_in_flight_high_water() {
        let (client, key, mut rng) = setup(147);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let handle = server.client();
        // A deep chain first: while its first wave runs, the two short
        // circuits are admitted and ride the subsequent super-waves.
        let deep_bits = [true, false, true, true, false, true, false];
        let deep = handle.submit(
            xor_chain(6),
            deep_bits
                .iter()
                .map(|&b| client.encrypt_with(b, &mut rng))
                .collect(),
        );
        let shorts: Vec<PendingCircuit> = (0..2)
            .map(|i| {
                let bits = [i == 0, true];
                handle.submit(
                    xor_chain(1),
                    bits.iter()
                        .map(|&b| client.encrypt_with(b, &mut rng))
                        .collect(),
                )
            })
            .collect();
        for (i, short) in shorts.into_iter().enumerate() {
            let run = short.wait().completed().expect("short circuit completes");
            assert_eq!(client.decrypt(&run.outputs[0]), i != 0);
        }
        let run = deep.wait().completed().expect("deep circuit completes");
        assert_eq!(
            client.decrypt(&run.outputs[0]),
            deep_bits.iter().fold(false, |a, &b| a ^ b)
        );
        let stats = server.stats();
        assert!(
            stats.max_in_flight >= 2,
            "short circuits must have been in flight with the deep one (high water {})",
            stats.max_in_flight
        );
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.tasks, 6 + 1 + 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_completes_queued_jobs_and_rejects_later_ones() {
        let (client, key, mut rng) = setup(142);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let handle = server.client();
        let pending: Vec<PendingCircuit> = (0..3)
            .map(|i| {
                let bits = [i == 0, i == 1, i == 2];
                handle.submit(
                    xor_chain(2),
                    bits.iter()
                        .map(|&b| client.encrypt_with(b, &mut rng))
                        .collect(),
                )
            })
            .collect();
        server.shutdown(); // blocks until every admitted circuit resolved
        for (i, ticket) in pending.into_iter().enumerate() {
            let run = ticket
                .wait()
                .completed()
                .unwrap_or_else(|| panic!("job {i} was queued before shutdown and must complete"));
            assert!(client.decrypt(&run.outputs[0]), "job {i}");
        }
        // Submissions after shutdown resolve to Rejected instead of
        // hanging.
        let late = handle.submit(xor_chain(1), {
            vec![
                client.encrypt_with(true, &mut rng),
                client.encrypt_with(false, &mut rng),
            ]
        });
        assert!(late.wait().is_rejected());
    }

    #[test]
    fn faulted_circuit_resolves_faulted_and_server_survives() {
        let (client, key, mut rng) = setup(145);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let handle = server.client();
        // `submit` validates dimensions now, so smuggle the malformed
        // input past it on the raw queue, as a buggy or hostile client
        // linking against the internals would: the task panics inside a
        // pool worker and must fault only its own circuit.
        let (reply, bad_rx) = mpsc::channel();
        server
            .tx
            .send(Msg::Job(Box::new(CircuitJob {
                netlist: xor_chain(1),
                inputs: vec![
                    client.encrypt_with(true, &mut rng),
                    LweCiphertext::trivial(matcha_math::Torus32::ZERO, 3),
                ],
                reply,
            })))
            .expect("server live");
        let outcome = bad_rx.recv().expect("scheduler answers the bad job");
        let CircuitOutcome::Faulted(msg) = outcome else {
            panic!("wrong-dimension circuit must fault, got {outcome:?}");
        };
        assert!(!msg.is_empty(), "fault carries the panic message");
        // …while the server keeps serving everyone else.
        let good = handle.submit(
            xor_chain(1),
            vec![
                client.encrypt_with(true, &mut rng),
                client.encrypt_with(false, &mut rng),
            ],
        );
        let run = good
            .wait()
            .completed()
            .expect("server must survive a faulted circuit");
        assert!(client.decrypt(&run.outputs[0]));
        assert_eq!(server.stats().faulted, 1);
        server.shutdown();
    }

    #[test]
    fn fault_spares_interleaved_neighbors() {
        let (client, key, mut rng) = setup(148);
        let server = CircuitServer::start(Arc::clone(&key), 2);
        let handle = server.client();
        // A healthy deep circuit is in flight when a malformed one joins
        // the same super-waves; the fault must not touch it.
        let bits = [true, true, false, true, false];
        let healthy = handle.submit(
            xor_chain(4),
            bits.iter()
                .map(|&b| client.encrypt_with(b, &mut rng))
                .collect(),
        );
        let (reply, bad_rx) = mpsc::channel();
        server
            .tx
            .send(Msg::Job(Box::new(CircuitJob {
                netlist: xor_chain(1),
                inputs: vec![
                    client.encrypt_with(true, &mut rng),
                    LweCiphertext::trivial(matcha_math::Torus32::ZERO, 3),
                ],
                reply,
            })))
            .expect("server live");
        assert!(matches!(
            bad_rx.recv().expect("bad job answered"),
            CircuitOutcome::Faulted(_)
        ));
        let run = healthy
            .wait()
            .completed()
            .expect("healthy neighbor completes");
        assert_eq!(
            client.decrypt(&run.outputs[0]),
            bits.iter().fold(false, |a, &b| a ^ b)
        );
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn start_rejects_zero_threads() {
        let (_, key, _) = setup(146);
        let _ = CircuitServer::start(key, 0);
    }

    #[test]
    #[should_panic(expected = "expects 3 inputs")]
    fn submit_rejects_wrong_input_count() {
        let (client, key, mut rng) = setup(143);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let _ = server
            .client()
            .submit(xor_chain(2), vec![client.encrypt_with(true, &mut rng)]);
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "LWE dimension")]
    fn submit_rejects_wrong_input_dimension() {
        let (client, key, mut rng) = setup(149);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        // Right count, wrong dimension: rejected at the API boundary,
        // before the circuit ever reaches a worker.
        let _ = server.client().submit(
            xor_chain(1),
            vec![
                client.encrypt_with(true, &mut rng),
                LweCiphertext::trivial(matcha_math::Torus32::ZERO, 3),
            ],
        );
        server.shutdown();
    }

    #[test]
    fn dropping_server_joins_scheduler_and_pool() {
        let (client, key, mut rng) = setup(144);
        {
            let server = CircuitServer::start(Arc::clone(&key), 2);
            let run = server
                .client()
                .submit(
                    xor_chain(1),
                    vec![
                        client.encrypt_with(true, &mut rng),
                        client.encrypt_with(true, &mut rng),
                    ],
                )
                .wait()
                .completed()
                .expect("server live");
            assert!(!client.decrypt(&run.outputs[0]));
        } // drop == graceful shutdown
        assert_eq!(
            Arc::strong_count(&key),
            1,
            "scheduler and pool workers must all have exited"
        );
    }

    #[test]
    fn empty_netlist_completes_immediately() {
        let (_, key, _) = setup(150);
        let server = CircuitServer::start(Arc::clone(&key), 1);
        let net = CircuitNetlist::new();
        let run = server
            .client()
            .submit(net, Vec::new())
            .wait()
            .completed()
            .expect("empty circuit completes");
        assert!(run.outputs.is_empty());
        assert_eq!(run.scheduled_ops, 0);
        server.shutdown();
    }
}
