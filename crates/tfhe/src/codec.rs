//! Compact binary serialization for the values that cross the
//! client/server boundary.
//!
//! In a TFHE deployment the client and the evaluator are different
//! machines: ciphertexts travel per gate-input and per result, and the
//! parameter set travels once. The format is little-endian with a
//! per-type magic tag and a version byte; it deliberately has no external
//! dependencies.
//!
//! Secret keys get `encode`/`decode` too (for client-side storage);
//! bootstrapping keys are engine-specific spectra and are regenerated via
//! [`crate::BootstrapKit::generate`] instead of shipped.

use crate::circuit::{CircuitNetlist, GateOp};
use crate::gates::Gate;
use crate::lwe::LweCiphertext;
use crate::params::ParameterSet;
use crate::secret::{LweSecretKey, RingSecretKey};
use crate::tlwe::TrlweCiphertext;
use matcha_math::{IntPolynomial, Torus32, TorusPolynomial};
use std::io::{self, Read, Write};

const VERSION: u8 = 1;

/// A type with a stable binary wire format.
///
/// Readers/writers are taken by value; pass `&mut reader` / `&mut writer`
/// to keep using them afterwards (the standard `Read`/`Write` blanket
/// impls make this work).
pub trait Codec: Sized {
    /// The 4-byte magic tag identifying the type on the wire.
    const MAGIC: [u8; 4];

    /// Writes the payload (everything after magic + version).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    fn encode_body<W: Write>(&self, w: W) -> io::Result<()>;

    /// Reads the payload.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed payloads, plus reader I/O errors.
    fn decode_body<R: Read>(r: R) -> io::Result<Self>;

    /// Writes magic, version, and payload.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    fn encode<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&Self::MAGIC)?;
        w.write_all(&[VERSION])?;
        self.encode_body(w)
    }

    /// Reads and checks magic + version, then the payload.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the magic or version does not match.
    fn decode<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != Self::MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "wrong magic tag",
            ));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported version {}", version[0]),
            ));
        }
        Self::decode_body(r)
    }

    /// Serializes to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out).expect("Vec<u8> writes cannot fail");
        out
    }

    /// Deserializes from a byte slice that holds exactly one value.
    ///
    /// Unlike [`Codec::decode`] — which reads one value off a stream and
    /// leaves whatever follows for the caller — this rejects input with
    /// trailing bytes after the payload: a blob that is "a valid value
    /// plus garbage" is not a valid blob.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed input or a non-empty remainder.
    fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let mut r = bytes;
        let value = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} trailing bytes after payload", r.len()),
            ));
        }
        Ok(value)
    }
}

pub(crate) fn write_u32<W: Write>(mut w: W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32<R: Read>(mut r: R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn write_u64<W: Write>(mut w: W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64<R: Read>(mut r: R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn write_f64<W: Write>(mut w: W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_f64<R: Read>(mut r: R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

fn read_len<R: Read>(r: R, max: u32) -> io::Result<usize> {
    let len = read_u32(r)?;
    if len == 0 || len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("length {len} outside 1..={max}"),
        ));
    }
    Ok(len as usize)
}

/// Like [`read_len`] but admitting zero (for counts that may be empty).
pub(crate) fn read_count<R: Read>(r: R, max: u32) -> io::Result<usize> {
    let len = read_u32(r)?;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("count {len} exceeds {max}"),
        ));
    }
    Ok(len as usize)
}

/// Largest dimension/degree the decoder accepts (DoS guard).
pub(crate) const MAX_LEN: u32 = 1 << 20;

/// Speculative-preallocation cap while decoding. Lengths are
/// attacker-controlled: a decoder may reserve at most this many bytes
/// ahead of payload actually received, so a truncated stream with a huge
/// claimed length fails on the read, not after a huge allocation. Growth
/// past the cap is the collection's amortized doubling — by then the
/// sender has paid for it in delivered bytes.
pub(crate) const PREALLOC_BYTES: usize = 1 << 14;

/// Reads exactly `n` torus words with capped speculative preallocation.
fn read_torus_words<R: Read>(mut r: R, n: usize) -> io::Result<Vec<Torus32>> {
    let mut v = Vec::with_capacity(n.min(PREALLOC_BYTES / 4));
    for _ in 0..n {
        v.push(Torus32::from_raw(read_u32(&mut r)?));
    }
    Ok(v)
}

/// Reads exactly `n` raw bytes with capped speculative preallocation.
pub(crate) fn read_bytes_exact<R: Read>(mut r: R, n: usize) -> io::Result<Vec<u8>> {
    let mut v = Vec::with_capacity(n.min(PREALLOC_BYTES));
    let mut chunk = [0u8; 1024];
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        v.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(v)
}

impl Codec for LweCiphertext {
    const MAGIC: [u8; 4] = *b"MLWE";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.dimension() as u32)?;
        for &x in self.mask() {
            write_u32(&mut w, x.raw())?;
        }
        write_u32(&mut w, self.body().raw())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let n = read_len(&mut r, MAX_LEN)?;
        let a = read_torus_words(&mut r, n)?;
        let b = Torus32::from_raw(read_u32(&mut r)?);
        Ok(LweCiphertext::from_parts(a, b))
    }
}

impl Codec for TrlweCiphertext {
    const MAGIC: [u8; 4] = *b"MRLW";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.ring_degree() as u32)?;
        for &x in self.mask().coeffs() {
            write_u32(&mut w, x.raw())?;
        }
        for &x in self.body().coeffs() {
            write_u32(&mut w, x.raw())?;
        }
        Ok(())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let n = read_len(&mut r, MAX_LEN)?;
        if !n.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "ring degree must be a power of two",
            ));
        }
        let read_poly = |r: &mut R| -> io::Result<TorusPolynomial> {
            Ok(TorusPolynomial::from_coeffs(read_torus_words(&mut *r, n)?))
        };
        let a = read_poly(&mut r)?;
        let b = read_poly(&mut r)?;
        Ok(TrlweCiphertext::from_parts(a, b))
    }
}

impl Codec for LweSecretKey {
    const MAGIC: [u8; 4] = *b"MLSK";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.dimension() as u32)?;
        // Bit-packed key.
        let mut byte = 0u8;
        for (i, &bit) in self.bits().iter().enumerate() {
            if bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                w.write_all(&[byte])?;
                byte = 0;
            }
        }
        if !self.dimension().is_multiple_of(8) {
            w.write_all(&[byte])?;
        }
        Ok(())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let n = read_len(&mut r, MAX_LEN)?;
        let bytes = read_bytes_exact(&mut r, n.div_ceil(8))?;
        // Canonical-form check: padding bits past `n` must be zero, so a
        // key has exactly one accepted encoding.
        if !n.is_multiple_of(8) && bytes[n / 8] >> (n % 8) != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "nonzero padding bits in packed key",
            ));
        }
        let bits = (0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect();
        Ok(LweSecretKey::from_bits(bits))
    }
}

impl Codec for RingSecretKey {
    const MAGIC: [u8; 4] = *b"MRSK";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        LweSecretKey::from_bits(self.as_poly().coeffs().iter().map(|&c| c != 0).collect())
            .encode_body(&mut w)
    }

    fn decode_body<R: Read>(r: R) -> io::Result<Self> {
        let bits = LweSecretKey::decode_body(r)?;
        let n = bits.dimension();
        if !n.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "ring degree must be a power of two",
            ));
        }
        let coeffs = bits.bits().iter().map(|&b| i32::from(b)).collect();
        Ok(RingSecretKey::from_poly(IntPolynomial::from_coeffs(coeffs)))
    }
}

impl Codec for ParameterSet {
    const MAGIC: [u8; 4] = *b"MPAR";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.lwe_dimension as u32)?;
        write_u32(&mut w, self.ring_degree as u32)?;
        write_f64(&mut w, self.lwe_noise_stdev)?;
        write_f64(&mut w, self.ring_noise_stdev)?;
        write_u32(&mut w, self.decomp_base_log)?;
        write_u32(&mut w, self.decomp_levels as u32)?;
        write_u32(&mut w, self.ks_base_log)?;
        write_u32(&mut w, self.ks_levels as u32)
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let params = ParameterSet {
            lwe_dimension: read_u32(&mut r)? as usize,
            ring_degree: read_u32(&mut r)? as usize,
            lwe_noise_stdev: read_f64(&mut r)?,
            ring_noise_stdev: read_f64(&mut r)?,
            decomp_base_log: read_u32(&mut r)?,
            decomp_levels: read_u32(&mut r)? as usize,
            ks_base_log: read_u32(&mut r)?,
            ks_levels: read_u32(&mut r)? as usize,
        };
        params
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(params)
    }
}

/// Stable wire index of a gate: its position in [`Gate::ALL`].
fn gate_code(gate: Gate) -> u8 {
    Gate::ALL
        .iter()
        .position(|&g| g == gate)
        .expect("Gate::ALL covers every gate") as u8
}

fn gate_from_code(code: u8) -> io::Result<Gate> {
    Gate::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("unknown gate {code}")))
}

impl Codec for CircuitNetlist {
    const MAGIC: [u8; 4] = *b"MNET";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.len() as u32)?;
        for op in self.ops() {
            match *op {
                GateOp::Input(slot) => {
                    w.write_all(&[0])?;
                    write_u32(&mut w, slot as u32)?;
                }
                GateOp::Constant(v) => w.write_all(&[1, u8::from(v)])?,
                GateOp::Binary(gate, a, b) => {
                    w.write_all(&[2, gate_code(gate)])?;
                    write_u32(&mut w, a as u32)?;
                    write_u32(&mut w, b as u32)?;
                }
                GateOp::Not(a) => {
                    w.write_all(&[3])?;
                    write_u32(&mut w, a as u32)?;
                }
                GateOp::Mux { sel, a, b } => {
                    w.write_all(&[4])?;
                    write_u32(&mut w, sel as u32)?;
                    write_u32(&mut w, a as u32)?;
                    write_u32(&mut w, b as u32)?;
                }
            }
        }
        write_u32(&mut w, self.outputs().len() as u32)?;
        for &o in self.outputs() {
            write_u32(&mut w, o as u32)?;
        }
        Ok(())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let n = read_count(&mut r, MAX_LEN)?;
        // Ops are at least 2 bytes each on the wire, so cap the
        // speculative reserve at half the prealloc budget in *entries*
        // (each entry is larger in memory than on the wire; the claimed
        // count is attacker-controlled).
        let mut ops = Vec::with_capacity(n.min(PREALLOC_BYTES / std::mem::size_of::<GateOp>()));
        let mut tag = [0u8; 1];
        for _ in 0..n {
            r.read_exact(&mut tag)?;
            let op = match tag[0] {
                0 => GateOp::Input(read_u32(&mut r)? as usize),
                1 => {
                    r.read_exact(&mut tag)?;
                    match tag[0] {
                        0 => GateOp::Constant(false),
                        1 => GateOp::Constant(true),
                        v => return Err(bad(format!("constant byte {v} is not 0/1"))),
                    }
                }
                2 => {
                    r.read_exact(&mut tag)?;
                    let gate = gate_from_code(tag[0])?;
                    let a = read_u32(&mut r)? as usize;
                    let b = read_u32(&mut r)? as usize;
                    GateOp::Binary(gate, a, b)
                }
                3 => GateOp::Not(read_u32(&mut r)? as usize),
                4 => {
                    let sel = read_u32(&mut r)? as usize;
                    let a = read_u32(&mut r)? as usize;
                    let b = read_u32(&mut r)? as usize;
                    GateOp::Mux { sel, a, b }
                }
                t => return Err(bad(format!("unknown op tag {t}"))),
            };
            ops.push(op);
        }
        let n_out = read_count(&mut r, MAX_LEN)?;
        let mut outputs = Vec::with_capacity(n_out.min(PREALLOC_BYTES / 8));
        for _ in 0..n_out {
            outputs.push(read_u32(&mut r)? as usize);
        }
        CircuitNetlist::from_parts(ops, outputs).map_err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_math::TorusSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler() -> TorusSampler<StdRng> {
        TorusSampler::new(StdRng::seed_from_u64(91))
    }

    #[test]
    fn lwe_ciphertext_roundtrip() {
        let mut s = sampler();
        let key = LweSecretKey::generate(63, &mut s);
        let c = LweCiphertext::encrypt(Torus32::from_dyadic(1, 3), &key, 1e-8, &mut s);
        let back = LweCiphertext::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn trlwe_ciphertext_roundtrip() {
        let mut s = sampler();
        let a = s.uniform_poly(64);
        let b = s.uniform_poly(64);
        let c = TrlweCiphertext::from_parts(a, b);
        let back = TrlweCiphertext::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn secret_keys_roundtrip() {
        let mut s = sampler();
        for n in [8usize, 63, 500] {
            let key = LweSecretKey::generate(n, &mut s);
            let back = LweSecretKey::from_bytes(&key.to_bytes()).unwrap();
            assert_eq!(back, key, "n={n}");
        }
        let ring = RingSecretKey::generate(128, &mut s);
        let back = RingSecretKey::from_bytes(&ring.to_bytes()).unwrap();
        assert_eq!(back, ring);
    }

    #[test]
    fn parameter_set_roundtrip() {
        for p in [ParameterSet::MATCHA, ParameterSet::TEST_FAST] {
            let back = ParameterSet::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut s = sampler();
        let key = LweSecretKey::generate(16, &mut s);
        let bytes = key.to_bytes();
        // Feeding an LWE-secret-key blob to the ciphertext decoder fails.
        let err = LweCiphertext::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut s = sampler();
        let key = LweSecretKey::generate(64, &mut s);
        let c = LweCiphertext::encrypt(Torus32::ZERO, &key, 1e-8, &mut s);
        let bytes = c.to_bytes();
        let err = LweCiphertext::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_length_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MLWE");
        bytes.push(1); // version
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = LweCiphertext::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn invalid_parameters_rejected_on_decode() {
        let mut p = ParameterSet::MATCHA;
        p.decomp_base_log = 30; // 30 × 3 > 32: invalid
        let bytes = {
            // Encode without validation by writing fields manually.
            let mut out = Vec::new();
            out.extend_from_slice(b"MPAR");
            out.push(1);
            p.encode_body(&mut out).unwrap();
            out
        };
        assert!(ParameterSet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_rejected_for_every_impl() {
        let mut s = sampler();
        let lwe = LweCiphertext::encrypt(
            Torus32::ZERO,
            &LweSecretKey::generate(16, &mut s),
            1e-8,
            &mut s,
        );
        let trlwe = TrlweCiphertext::from_parts(s.uniform_poly(32), s.uniform_poly(32));
        let lsk = LweSecretKey::generate(19, &mut s);
        let rsk = RingSecretKey::generate(32, &mut s);
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let g = net.gate(Gate::Nand, a, b);
        net.mark_output(g);

        fn check<T: Codec + std::fmt::Debug>(value: &T) {
            let mut bytes = value.to_bytes();
            bytes.push(0xAB);
            let err = T::from_bytes(&bytes).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "{}",
                std::any::type_name::<T>()
            );
            // The stream-friendly decode still accepts a value with data
            // after it, leaving the remainder unread.
            let mut r: &[u8] = &bytes;
            T::decode(&mut r).expect("decode tolerates trailing stream data");
            assert_eq!(r, [0xAB]);
        }
        check(&lwe);
        check(&trlwe);
        check(&lsk);
        check(&rsk);
        check(&ParameterSet::MATCHA);
        check(&net);
    }

    #[test]
    fn netlist_roundtrip() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let c = net.constant(true);
        let x = net.gate(Gate::Xor, a, b);
        let nx = net.not(x);
        let m = net.mux(c, nx, a);
        net.mark_output(x);
        net.mark_output(m);
        let back = CircuitNetlist::from_bytes(&net.to_bytes()).unwrap();
        assert_eq!(back.ops(), net.ops());
        assert_eq!(back.outputs(), net.outputs());
        assert_eq!(back.num_inputs(), net.num_inputs());
        assert_eq!(back.depth(), net.depth());
    }

    #[test]
    fn empty_netlist_roundtrip() {
        let net = CircuitNetlist::new();
        let back = CircuitNetlist::from_bytes(&net.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert!(back.outputs().is_empty());
    }

    #[test]
    fn forward_referencing_netlist_rejected() {
        // Hand-craft a netlist whose gate references a later node.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MNET");
        bytes.push(1); // version
        bytes.extend_from_slice(&2u32.to_le_bytes()); // two nodes
        bytes.push(0); // Input
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[2, 0]); // Binary And
        bytes.extend_from_slice(&0u32.to_le_bytes()); // a = 0: fine
        bytes.extend_from_slice(&5u32.to_le_bytes()); // b = 5: forward
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no outputs
        let err = CircuitNetlist::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_gate_and_op_tags_rejected() {
        for (tag, extra) in [(2u8, vec![99u8]), (7u8, vec![])] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(b"MNET");
            bytes.push(1);
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.push(tag);
            bytes.extend_from_slice(&extra);
            bytes.extend_from_slice(&[0u8; 8]); // operands
            assert!(CircuitNetlist::from_bytes(&bytes).is_err(), "tag {tag}");
        }
    }

    #[test]
    fn decrypts_after_roundtrip() {
        // End-to-end: encrypt, serialize, deserialize, decrypt.
        let mut rng = StdRng::seed_from_u64(92);
        let client = crate::ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let c = client.encrypt_with(true, &mut rng);
        let wire = c.to_bytes();
        let received = LweCiphertext::from_bytes(&wire).unwrap();
        assert!(client.decrypt(&received));
    }
}
