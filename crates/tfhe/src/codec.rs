//! Compact binary serialization for the values that cross the
//! client/server boundary.
//!
//! In a TFHE deployment the client and the evaluator are different
//! machines: ciphertexts travel per gate-input and per result, and the
//! parameter set travels once. The format is little-endian with a
//! per-type magic tag and a version byte; it deliberately has no external
//! dependencies.
//!
//! Secret keys get `encode`/`decode` too (for client-side storage);
//! bootstrapping keys are engine-specific spectra and are regenerated via
//! [`crate::BootstrapKit::generate`] instead of shipped.

use crate::lwe::LweCiphertext;
use crate::params::ParameterSet;
use crate::secret::{LweSecretKey, RingSecretKey};
use crate::tlwe::TrlweCiphertext;
use matcha_math::{IntPolynomial, Torus32, TorusPolynomial};
use std::io::{self, Read, Write};

const VERSION: u8 = 1;

/// A type with a stable binary wire format.
///
/// Readers/writers are taken by value; pass `&mut reader` / `&mut writer`
/// to keep using them afterwards (the standard `Read`/`Write` blanket
/// impls make this work).
pub trait Codec: Sized {
    /// The 4-byte magic tag identifying the type on the wire.
    const MAGIC: [u8; 4];

    /// Writes the payload (everything after magic + version).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    fn encode_body<W: Write>(&self, w: W) -> io::Result<()>;

    /// Reads the payload.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed payloads, plus reader I/O errors.
    fn decode_body<R: Read>(r: R) -> io::Result<Self>;

    /// Writes magic, version, and payload.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    fn encode<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&Self::MAGIC)?;
        w.write_all(&[VERSION])?;
        self.encode_body(w)
    }

    /// Reads and checks magic + version, then the payload.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the magic or version does not match.
    fn decode<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != Self::MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "wrong magic tag",
            ));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported version {}", version[0]),
            ));
        }
        Self::decode_body(r)
    }

    /// Serializes to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out).expect("Vec<u8> writes cannot fail");
        out
    }

    /// Deserializes from a byte slice.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed input.
    fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        Self::decode(bytes)
    }
}

fn write_u32<W: Write>(mut w: W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(mut r: R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn write_f64<W: Write>(mut w: W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f64<R: Read>(mut r: R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

fn read_len<R: Read>(r: R, max: u32) -> io::Result<usize> {
    let len = read_u32(r)?;
    if len == 0 || len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("length {len} outside 1..={max}"),
        ));
    }
    Ok(len as usize)
}

/// Largest dimension/degree the decoder accepts (DoS guard).
const MAX_LEN: u32 = 1 << 20;

impl Codec for LweCiphertext {
    const MAGIC: [u8; 4] = *b"MLWE";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.dimension() as u32)?;
        for &x in self.mask() {
            write_u32(&mut w, x.raw())?;
        }
        write_u32(&mut w, self.body().raw())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let n = read_len(&mut r, MAX_LEN)?;
        let mut a = Vec::with_capacity(n);
        for _ in 0..n {
            a.push(Torus32::from_raw(read_u32(&mut r)?));
        }
        let b = Torus32::from_raw(read_u32(&mut r)?);
        Ok(LweCiphertext::from_parts(a, b))
    }
}

impl Codec for TrlweCiphertext {
    const MAGIC: [u8; 4] = *b"MRLW";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.ring_degree() as u32)?;
        for &x in self.mask().coeffs() {
            write_u32(&mut w, x.raw())?;
        }
        for &x in self.body().coeffs() {
            write_u32(&mut w, x.raw())?;
        }
        Ok(())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let n = read_len(&mut r, MAX_LEN)?;
        if !n.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "ring degree must be a power of two",
            ));
        }
        let read_poly = |r: &mut R| -> io::Result<TorusPolynomial> {
            let mut coeffs = Vec::with_capacity(n);
            for _ in 0..n {
                coeffs.push(Torus32::from_raw(read_u32(&mut *r)?));
            }
            Ok(TorusPolynomial::from_coeffs(coeffs))
        };
        let a = read_poly(&mut r)?;
        let b = read_poly(&mut r)?;
        Ok(TrlweCiphertext::from_parts(a, b))
    }
}

impl Codec for LweSecretKey {
    const MAGIC: [u8; 4] = *b"MLSK";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.dimension() as u32)?;
        // Bit-packed key.
        let mut byte = 0u8;
        for (i, &bit) in self.bits().iter().enumerate() {
            if bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                w.write_all(&[byte])?;
                byte = 0;
            }
        }
        if !self.dimension().is_multiple_of(8) {
            w.write_all(&[byte])?;
        }
        Ok(())
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let n = read_len(&mut r, MAX_LEN)?;
        let mut bytes = vec![0u8; n.div_ceil(8)];
        r.read_exact(&mut bytes)?;
        let bits = (0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect();
        Ok(LweSecretKey::from_bits(bits))
    }
}

impl Codec for RingSecretKey {
    const MAGIC: [u8; 4] = *b"MRSK";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        LweSecretKey::from_bits(self.as_poly().coeffs().iter().map(|&c| c != 0).collect())
            .encode_body(&mut w)
    }

    fn decode_body<R: Read>(r: R) -> io::Result<Self> {
        let bits = LweSecretKey::decode_body(r)?;
        let n = bits.dimension();
        if !n.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "ring degree must be a power of two",
            ));
        }
        let coeffs = bits.bits().iter().map(|&b| i32::from(b)).collect();
        Ok(RingSecretKey::from_poly(IntPolynomial::from_coeffs(coeffs)))
    }
}

impl Codec for ParameterSet {
    const MAGIC: [u8; 4] = *b"MPAR";

    fn encode_body<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, self.lwe_dimension as u32)?;
        write_u32(&mut w, self.ring_degree as u32)?;
        write_f64(&mut w, self.lwe_noise_stdev)?;
        write_f64(&mut w, self.ring_noise_stdev)?;
        write_u32(&mut w, self.decomp_base_log)?;
        write_u32(&mut w, self.decomp_levels as u32)?;
        write_u32(&mut w, self.ks_base_log)?;
        write_u32(&mut w, self.ks_levels as u32)
    }

    fn decode_body<R: Read>(mut r: R) -> io::Result<Self> {
        let params = ParameterSet {
            lwe_dimension: read_u32(&mut r)? as usize,
            ring_degree: read_u32(&mut r)? as usize,
            lwe_noise_stdev: read_f64(&mut r)?,
            ring_noise_stdev: read_f64(&mut r)?,
            decomp_base_log: read_u32(&mut r)?,
            decomp_levels: read_u32(&mut r)? as usize,
            ks_base_log: read_u32(&mut r)?,
            ks_levels: read_u32(&mut r)? as usize,
        };
        params
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_math::TorusSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler() -> TorusSampler<StdRng> {
        TorusSampler::new(StdRng::seed_from_u64(91))
    }

    #[test]
    fn lwe_ciphertext_roundtrip() {
        let mut s = sampler();
        let key = LweSecretKey::generate(63, &mut s);
        let c = LweCiphertext::encrypt(Torus32::from_dyadic(1, 3), &key, 1e-8, &mut s);
        let back = LweCiphertext::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn trlwe_ciphertext_roundtrip() {
        let mut s = sampler();
        let a = s.uniform_poly(64);
        let b = s.uniform_poly(64);
        let c = TrlweCiphertext::from_parts(a, b);
        let back = TrlweCiphertext::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn secret_keys_roundtrip() {
        let mut s = sampler();
        for n in [8usize, 63, 500] {
            let key = LweSecretKey::generate(n, &mut s);
            let back = LweSecretKey::from_bytes(&key.to_bytes()).unwrap();
            assert_eq!(back, key, "n={n}");
        }
        let ring = RingSecretKey::generate(128, &mut s);
        let back = RingSecretKey::from_bytes(&ring.to_bytes()).unwrap();
        assert_eq!(back, ring);
    }

    #[test]
    fn parameter_set_roundtrip() {
        for p in [ParameterSet::MATCHA, ParameterSet::TEST_FAST] {
            let back = ParameterSet::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut s = sampler();
        let key = LweSecretKey::generate(16, &mut s);
        let bytes = key.to_bytes();
        // Feeding an LWE-secret-key blob to the ciphertext decoder fails.
        let err = LweCiphertext::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut s = sampler();
        let key = LweSecretKey::generate(64, &mut s);
        let c = LweCiphertext::encrypt(Torus32::ZERO, &key, 1e-8, &mut s);
        let bytes = c.to_bytes();
        let err = LweCiphertext::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_length_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MLWE");
        bytes.push(1); // version
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = LweCiphertext::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn invalid_parameters_rejected_on_decode() {
        let mut p = ParameterSet::MATCHA;
        p.decomp_base_log = 30; // 30 × 3 > 32: invalid
        let bytes = {
            // Encode without validation by writing fields manually.
            let mut out = Vec::new();
            out.extend_from_slice(b"MPAR");
            out.push(1);
            p.encode_body(&mut out).unwrap();
            out
        };
        assert!(ParameterSet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn decrypts_after_roundtrip() {
        // End-to-end: encrypt, serialize, deserialize, decrypt.
        let mut rng = StdRng::seed_from_u64(92);
        let client = crate::ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let c = client.encrypt_with(true, &mut rng);
        let wire = c.to_bytes();
        let received = LweCiphertext::from_bytes(&wire).unwrap();
        assert!(client.decrypt(&received));
    }
}
