//! LWE key switching (Algorithm 1's final step).
//!
//! Sample extraction leaves the bootstrapped sample encrypted under the
//! extracted ring key `s′` of dimension `N`; key switching converts it back
//! to the gate-level key `s` of dimension `n` by decomposing every mask
//! coefficient in base `2^γ` over `t` levels and subtracting pre-encrypted
//! multiples of the `s′` bits.

use crate::lwe::LweCiphertext;
use crate::params::ParameterSet;
use crate::profile::{self, Phase};
use crate::secret::LweSecretKey;
use matcha_math::{Torus32, TorusSampler};
use rand::Rng;

/// A key-switching key `KS_{s′→s}`.
///
/// Stores `N × t × (2^γ − 1)` LWE samples: entry `(i, j, v)` encrypts
/// `v · s′_i / 2^{(j+1)γ}` under the target key.
#[derive(Clone, Debug)]
pub struct KeySwitchKey {
    entries: Vec<LweCiphertext>,
    from_dimension: usize,
    to_dimension: usize,
    base_log: u32,
    levels: usize,
}

impl KeySwitchKey {
    /// Generates a key-switching key from `from_key` to `to_key`.
    ///
    /// # Panics
    ///
    /// Panics if `ks_base_log` or `ks_levels` is zero, if
    /// `ks_base_log ≥ 32` (the base `2^γ` itself must fit a `u32`), or if
    /// `ks_base_log · ks_levels > 32`: the decomposition shifts
    /// `32 − (j+1)·γ` (here and in [`KeySwitchKey::switch_into`]) would
    /// underflow past the 32-bit torus — a debug-build panic and a silent
    /// release-build wraparound before this constructor-time check.
    pub fn generate<R: Rng>(
        from_key: &LweSecretKey,
        to_key: &LweSecretKey,
        params: &ParameterSet,
        sampler: &mut TorusSampler<R>,
    ) -> Self {
        let base_log = params.ks_base_log;
        let levels = params.ks_levels;
        assert!(
            base_log > 0 && levels > 0,
            "key-switch decomposition parameters must be nonzero"
        );
        // base_log = 32 would already overflow `1u32 << base_log` below
        // even with a single level, so the base itself must fit too.
        assert!(
            base_log < 32 && base_log as usize * levels <= 32,
            "ks_base_log {base_log} × ks_levels {levels} exceeds the 32-bit torus"
        );
        let base = 1u32 << base_log;
        let n_from = from_key.dimension();
        let mut entries = Vec::with_capacity(n_from * levels * (base as usize - 1));
        for i in 0..n_from {
            let s_bit = u32::from(from_key.bits()[i]);
            for j in 0..levels {
                let unit = Torus32::from_raw(1u32 << (32 - (j as u32 + 1) * base_log));
                for v in 1..base {
                    let mu = unit * (v * s_bit) as i32;
                    entries.push(LweCiphertext::encrypt(
                        mu,
                        to_key,
                        params.lwe_noise_stdev,
                        sampler,
                    ));
                }
            }
        }
        Self {
            entries,
            from_dimension: n_from,
            to_dimension: to_key.dimension(),
            base_log,
            levels,
        }
    }

    /// Source key dimension `N`.
    pub fn from_dimension(&self) -> usize {
        self.from_dimension
    }

    /// Target key dimension `n`.
    pub fn to_dimension(&self) -> usize {
        self.to_dimension
    }

    /// Size of the key in LWE samples (for memory-traffic models).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Switches `c` (under the source key) to the target key.
    ///
    /// # Panics
    ///
    /// Panics if `c`'s dimension does not match the source key.
    pub fn switch(&self, c: &LweCiphertext) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(c.body(), self.to_dimension);
        self.switch_into(c, &mut out);
        out
    }

    /// [`KeySwitchKey::switch`] into a caller-owned output — no allocation
    /// once `out`'s mask has capacity `n`.
    ///
    /// # Panics
    ///
    /// Panics if `c`'s dimension does not match the source key.
    pub fn switch_into(&self, c: &LweCiphertext, out: &mut LweCiphertext) {
        profile::timed(Phase::KeySwitch, || self.switch_inner(c, out))
    }

    fn switch_inner(&self, c: &LweCiphertext, out: &mut LweCiphertext) {
        assert_eq!(c.dimension(), self.from_dimension, "dimension mismatch");
        let base = 1u32 << self.base_log;
        let mask = base - 1;
        let per_i = self.levels * (base as usize - 1);
        // Round each coefficient to t·γ bits before decomposing.
        let precision_bits = self.base_log * self.levels as u32;
        let round_bump = if precision_bits < 32 {
            1u32 << (31 - precision_bits)
        } else {
            0
        };
        out.assign_trivial(c.body(), self.to_dimension);
        for (i, &ai) in c.mask().iter().enumerate() {
            let t = ai.raw().wrapping_add(round_bump);
            for j in 0..self.levels {
                let shift = 32 - (j as u32 + 1) * self.base_log;
                let digit = (t >> shift) & mask;
                if digit != 0 {
                    let idx = i * per_i + j * (base as usize - 1) + (digit as usize - 1);
                    out.sub_assign(&self.entries[idx]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        LweSecretKey,
        LweSecretKey,
        KeySwitchKey,
        TorusSampler<StdRng>,
    ) {
        let params = ParameterSet::TEST_FAST;
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(31));
        let from = LweSecretKey::generate(128, &mut sampler);
        let to = LweSecretKey::generate(params.lwe_dimension, &mut sampler);
        let ksk = KeySwitchKey::generate(&from, &to, &params, &mut sampler);
        (from, to, ksk, sampler)
    }

    #[test]
    fn switch_preserves_message() {
        let (from, to, ksk, mut sampler) = setup();
        for &m in &[0.125, -0.125, 0.25, 0.0] {
            let mu = Torus32::from_f64(m);
            let c = LweCiphertext::encrypt(mu, &from, 1e-8, &mut sampler);
            let switched = ksk.switch(&c);
            assert_eq!(switched.dimension(), to.dimension());
            let err = switched.phase(&to).signed_diff(mu).abs();
            assert!(err < 1e-3, "message {m}: error {err}");
        }
    }

    #[test]
    fn switch_is_linear() {
        let (from, to, ksk, mut sampler) = setup();
        let c1 = LweCiphertext::encrypt(Torus32::from_f64(0.125), &from, 1e-8, &mut sampler);
        let c2 = LweCiphertext::encrypt(Torus32::from_f64(0.25), &from, 1e-8, &mut sampler);
        let sum_then_switch = ksk.switch(&(c1.clone() + &c2));
        let expected = Torus32::from_f64(0.375);
        assert!(sum_then_switch.phase(&to).signed_diff(expected).abs() < 1e-3);
    }

    #[test]
    fn entry_count_matches_formula() {
        let (_, _, ksk, _) = setup();
        assert_eq!(ksk.entry_count(), 128 * 8 * 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_rejected() {
        let (_, _, ksk, _) = setup();
        let c = LweCiphertext::trivial(Torus32::ZERO, 64);
        let _ = ksk.switch(&c);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-bit torus")]
    fn oversized_decomposition_rejected() {
        // 12 × 3 = 36 > 32: the per-level shift `32 − (j+1)·γ` would
        // underflow at j = 2. Must be rejected at key generation, not
        // deep inside a switch.
        let params = ParameterSet {
            ks_base_log: 12,
            ks_levels: 3,
            ..ParameterSet::TEST_FAST
        };
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(1));
        let from = LweSecretKey::generate(16, &mut sampler);
        let to = LweSecretKey::generate(params.lwe_dimension, &mut sampler);
        let _ = KeySwitchKey::generate(&from, &to, &params, &mut sampler);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-bit torus")]
    fn full_width_base_rejected() {
        // γ = 32 with a single level passes γ·t ≤ 32 but `1u32 << 32`
        // overflows; the constructor must reject the base itself.
        let params = ParameterSet {
            ks_base_log: 32,
            ks_levels: 1,
            ..ParameterSet::TEST_FAST
        };
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(4));
        let from = LweSecretKey::generate(16, &mut sampler);
        let to = LweSecretKey::generate(params.lwe_dimension, &mut sampler);
        let _ = KeySwitchKey::generate(&from, &to, &params, &mut sampler);
    }

    #[test]
    #[should_panic(expected = "must be nonzero")]
    fn zero_levels_rejected() {
        let params = ParameterSet {
            ks_levels: 0,
            ..ParameterSet::TEST_FAST
        };
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(2));
        let from = LweSecretKey::generate(16, &mut sampler);
        let to = LweSecretKey::generate(params.lwe_dimension, &mut sampler);
        let _ = KeySwitchKey::generate(&from, &to, &params, &mut sampler);
    }

    #[test]
    fn full_precision_32_bits_accepted() {
        // γ·t = 32 exactly is legal: the finest level's shift is 0 and the
        // rounding bump is skipped (precision_bits == 32).
        let params = ParameterSet {
            ks_base_log: 8,
            ks_levels: 4,
            ..ParameterSet::TEST_FAST
        };
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(3));
        let from = LweSecretKey::generate(16, &mut sampler);
        let to = LweSecretKey::generate(params.lwe_dimension, &mut sampler);
        let ksk = KeySwitchKey::generate(&from, &to, &params, &mut sampler);
        let c = LweCiphertext::encrypt(Torus32::from_f64(0.25), &from, 1e-9, &mut sampler);
        let err = ksk
            .switch(&c)
            .phase(&to)
            .signed_diff(Torus32::from_f64(0.25));
        assert!(err.abs() < 1e-2, "error {err}");
    }

    #[test]
    fn noise_growth_is_bounded() {
        let (from, to, ksk, mut sampler) = setup();
        let mut worst: f64 = 0.0;
        for _ in 0..20 {
            let c = LweCiphertext::encrypt(Torus32::from_f64(0.125), &from, 1e-8, &mut sampler);
            let err = ksk
                .switch(&c)
                .phase(&to)
                .signed_diff(Torus32::from_f64(0.125))
                .abs();
            worst = worst.max(err);
        }
        // 128 coefficients × 8 levels of noise-1e-7 keys plus rounding at
        // 2^-17 granularity: comfortably below the 1/16 gate margin.
        assert!(worst < 1e-2, "worst key-switch noise {worst}");
    }
}
