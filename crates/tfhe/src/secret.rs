//! Secret key material: the gate-level LWE key, the ring (bootstrapping)
//! key, and the client-side bundle of both.

use crate::lwe::LweCiphertext;
use crate::params::ParameterSet;
use matcha_math::{IntPolynomial, Torus32, TorusSampler};
use rand::Rng;

/// A binary LWE secret key `s ∈ B^n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LweSecretKey {
    bits: Vec<bool>,
}

impl LweSecretKey {
    /// Samples a uniform binary key of dimension `n`.
    pub fn generate<R: Rng>(n: usize, sampler: &mut TorusSampler<R>) -> Self {
        Self {
            bits: sampler.binary_vector(n),
        }
    }

    /// Builds a key from explicit bits (used by `KeyExtract`).
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Key dimension `n`.
    pub fn dimension(&self) -> usize {
        self.bits.len()
    }

    /// The key bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The inner product `⟨a, s⟩` over the torus.
    pub fn dot(&self, a: &[Torus32]) -> Torus32 {
        debug_assert_eq!(a.len(), self.bits.len());
        a.iter()
            .zip(self.bits.iter())
            .filter(|(_, &s)| s)
            .map(|(&ai, _)| ai)
            .sum()
    }
}

/// A binary ring secret key `s″ ∈ B_N[X]` (TLWE key with `k = 1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingSecretKey {
    poly: IntPolynomial,
}

impl RingSecretKey {
    /// Samples a uniform binary polynomial key of degree bound `n`.
    pub fn generate<R: Rng>(n: usize, sampler: &mut TorusSampler<R>) -> Self {
        let coeffs = (0..n).map(|_| i32::from(sampler.binary())).collect();
        Self {
            poly: IntPolynomial::from_coeffs(coeffs),
        }
    }

    /// Builds a key from an explicit binary polynomial.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is outside `{0, 1}`.
    pub fn from_poly(poly: IntPolynomial) -> Self {
        assert!(
            poly.coeffs().iter().all(|&c| c == 0 || c == 1),
            "ring secret key must be binary"
        );
        Self { poly }
    }

    /// Ring degree `N`.
    pub fn ring_degree(&self) -> usize {
        self.poly.len()
    }

    /// The key as an integer polynomial (for `s·a` products).
    pub fn as_poly(&self) -> &IntPolynomial {
        &self.poly
    }

    /// `KeyExtract`: reinterprets the `N` polynomial coefficients as an
    /// LWE key of dimension `N` (Algorithm 1's `s′ = KeyExtract(s″)`).
    pub fn extract_lwe_key(&self) -> LweSecretKey {
        LweSecretKey::from_bits(self.poly.coeffs().iter().map(|&c| c != 0).collect())
    }

    /// Secret-key bit `s_i` as a boolean.
    pub fn bit(&self, i: usize) -> bool {
        self.poly.coeffs()[i] != 0
    }
}

/// The client's secret material: the gate-level LWE key and the ring key
/// that underlies the bootstrapping and key-switching keys.
#[derive(Clone, Debug)]
pub struct ClientKey {
    params: ParameterSet,
    lwe_key: LweSecretKey,
    ring_key: RingSecretKey,
}

impl ClientKey {
    /// Generates fresh client keys for `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`ParameterSet::validate`].
    ///
    /// # Examples
    ///
    /// ```
    /// use matcha_tfhe::{ClientKey, params::ParameterSet};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let key = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    /// let c = key.encrypt(true);
    /// assert!(key.decrypt(&c));
    /// ```
    pub fn generate<R: Rng>(params: ParameterSet, rng: &mut R) -> Self {
        params.validate().expect("invalid parameter set");
        let mut sampler = TorusSampler::new(rng);
        let lwe_key = LweSecretKey::generate(params.lwe_dimension, &mut sampler);
        let ring_key = RingSecretKey::generate(params.ring_degree, &mut sampler);
        Self {
            params,
            lwe_key,
            ring_key,
        }
    }

    /// The parameter set the keys were generated for.
    pub fn params(&self) -> &ParameterSet {
        &self.params
    }

    /// The gate-level LWE key.
    pub fn lwe_key(&self) -> &LweSecretKey {
        &self.lwe_key
    }

    /// The ring key.
    pub fn ring_key(&self) -> &RingSecretKey {
        &self.ring_key
    }

    /// Encrypts one Boolean under the gate-level key
    /// (plaintext `±1/8`, fresh noise `lwe_noise_stdev`).
    pub fn encrypt(&self, message: bool) -> LweCiphertext {
        // Deterministic key, fresh randomness from the thread RNG.
        self.encrypt_with(message, &mut rand::thread_rng())
    }

    /// Encrypts with caller-provided randomness (for reproducible tests).
    pub fn encrypt_with<R: Rng>(&self, message: bool, rng: &mut R) -> LweCiphertext {
        let mut sampler = TorusSampler::new(rng);
        LweCiphertext::encrypt(
            Torus32::from_bool(message),
            &self.lwe_key,
            self.params.lwe_noise_stdev,
            &mut sampler,
        )
    }

    /// Decrypts a gate-level ciphertext to its Boolean message.
    pub fn decrypt(&self, c: &LweCiphertext) -> bool {
        c.phase(&self.lwe_key).to_bool()
    }

    /// The signed phase error of a ciphertext relative to the exact
    /// plaintext `±1/8` — the noise quantity Table 3 of the paper tracks.
    pub fn noise_of(&self, c: &LweCiphertext, message: bool) -> f64 {
        c.phase(&self.lwe_key)
            .signed_diff(Torus32::from_bool(message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_extract_preserves_bits() {
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(3));
        let ring = RingSecretKey::generate(64, &mut sampler);
        let lwe = ring.extract_lwe_key();
        assert_eq!(lwe.dimension(), 64);
        for i in 0..64 {
            assert_eq!(lwe.bits()[i], ring.bit(i));
        }
    }

    #[test]
    fn dot_product_counts_selected_entries() {
        let key = LweSecretKey::from_bits(vec![true, false, true]);
        let a = vec![
            Torus32::from_f64(0.125),
            Torus32::from_f64(0.4),
            Torus32::from_f64(0.25),
        ];
        assert_eq!(key.dot(&a), Torus32::from_f64(0.375));
    }

    #[test]
    fn client_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let key = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        for msg in [true, false] {
            let c = key.encrypt_with(msg, &mut rng);
            assert_eq!(key.decrypt(&c), msg);
            assert!(key.noise_of(&c, msg).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_ring_key_rejected() {
        let _ = RingSecretKey::from_poly(IntPolynomial::from_coeffs(vec![0, 2, 1, 0]));
    }
}
