//! Per-phase latency accounting used to regenerate Figure 1 of the paper
//! (the FFT / IFFT / other breakdown of TFHE gate latency).
//!
//! Counters are thread-local, so parallel benchmark runners do not need
//! locks; each worker reads its own breakdown.
//!
//! Naming follows TFHE's convention (which the paper uses): **IFFT** is the
//! coefficient → Lagrange transform (applied to decomposed digits, 4–6× per
//! blind-rotation step) and **FFT** is the Lagrange → coefficient transform
//! (2× per step), which is why IFFT dominates in Figure 1.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// The latency phases of a TFHE gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Coefficient → Lagrange transforms (TFHE's "IFFT").
    Ifft,
    /// Lagrange → coefficient transforms (TFHE's "FFT").
    Fft,
    /// TGSW scale/add work: bootstrapping-key bundle construction.
    TgswScale,
    /// Key switching.
    KeySwitch,
    /// Everything else (decomposition, pointwise MACs, rotations, linear
    /// gate algebra, sample extraction).
    Other,
}

const PHASES: usize = 5;

fn index(phase: Phase) -> usize {
    match phase {
        Phase::Ifft => 0,
        Phase::Fft => 1,
        Phase::TgswScale => 2,
        Phase::KeySwitch => 3,
        Phase::Other => 4,
    }
}

thread_local! {
    static COUNTERS: RefCell<[Duration; PHASES]> = const { RefCell::new([Duration::ZERO; PHASES]) };
    static CALLS: RefCell<[u64; PHASES]> = const { RefCell::new([0; PHASES]) };
    static ENABLED: RefCell<bool> = const { RefCell::new(false) };
}

/// Enables profiling on this thread and clears previous counters.
pub fn start() {
    COUNTERS.with(|c| *c.borrow_mut() = [Duration::ZERO; PHASES]);
    CALLS.with(|c| *c.borrow_mut() = [0; PHASES]);
    ENABLED.with(|e| *e.borrow_mut() = true);
}

/// Disables profiling on this thread (counters are retained).
pub fn stop() {
    ENABLED.with(|e| *e.borrow_mut() = false);
}

/// Returns `true` if profiling is active on this thread.
pub fn enabled() -> bool {
    ENABLED.with(|e| *e.borrow())
}

/// Runs `f`, attributing its wall time to `phase` when profiling is active.
#[inline]
pub fn timed<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed();
    COUNTERS.with(|c| c.borrow_mut()[index(phase)] += dt);
    CALLS.with(|c| c.borrow_mut()[index(phase)] += 1);
    out
}

/// A snapshot of the per-phase totals.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Coefficient → Lagrange transform time.
    pub ifft: Duration,
    /// Lagrange → coefficient transform time.
    pub fft: Duration,
    /// Bundle (TGSW scale/add) time.
    pub tgsw_scale: Duration,
    /// Key-switch time.
    pub key_switch: Duration,
    /// Everything else.
    pub other: Duration,
    /// Coefficient → Lagrange call count.
    pub ifft_calls: u64,
    /// Lagrange → coefficient call count.
    pub fft_calls: u64,
}

impl Breakdown {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.ifft + self.fft + self.tgsw_scale + self.key_switch + self.other
    }

    /// Fraction (0–1) of total time in a phase.
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let part = match phase {
            Phase::Ifft => self.ifft,
            Phase::Fft => self.fft,
            Phase::TgswScale => self.tgsw_scale,
            Phase::KeySwitch => self.key_switch,
            Phase::Other => self.other,
        };
        part.as_secs_f64() / total
    }
}

/// Reads this thread's counters.
pub fn snapshot() -> Breakdown {
    let counters = COUNTERS.with(|c| *c.borrow());
    let calls = CALLS.with(|c| *c.borrow());
    Breakdown {
        ifft: counters[0],
        fft: counters[1],
        tgsw_scale: counters[2],
        key_switch: counters[3],
        other: counters[4],
        ifft_calls: calls[0],
        fft_calls: calls[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_costs_nothing() {
        stop();
        let before = snapshot();
        timed(Phase::Ifft, || std::thread::sleep(Duration::from_millis(1)));
        assert_eq!(snapshot(), before);
    }

    #[test]
    fn attributes_time_to_phases() {
        start();
        timed(Phase::Ifft, || std::thread::sleep(Duration::from_millis(2)));
        timed(Phase::Fft, || std::thread::sleep(Duration::from_millis(1)));
        let snap = snapshot();
        stop();
        assert!(snap.ifft >= Duration::from_millis(2));
        assert!(snap.fft >= Duration::from_millis(1));
        assert_eq!(snap.ifft_calls, 1);
        assert_eq!(snap.fft_calls, 1);
        assert!(snap.fraction(Phase::Ifft) > snap.fraction(Phase::Fft));
    }

    #[test]
    fn start_resets() {
        start();
        timed(Phase::Other, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        start();
        let snap = snapshot();
        stop();
        assert_eq!(snap.other, Duration::ZERO);
    }

    #[test]
    fn fraction_sums_to_one() {
        start();
        timed(Phase::Ifft, || std::thread::sleep(Duration::from_millis(1)));
        timed(Phase::KeySwitch, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        let snap = snapshot();
        stop();
        let sum: f64 = [
            Phase::Ifft,
            Phase::Fft,
            Phase::TgswScale,
            Phase::KeySwitch,
            Phase::Other,
        ]
        .iter()
        .map(|&p| snap.fraction(p))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
