//! The CMux gate: homomorphic selection between two TRLWE ciphertexts
//! controlled by a TGSW-encrypted bit.
//!
//! `CMux(C, d0, d1) = d0 + C ⊡ (d1 − d0)` selects `d1` when `C` encrypts 1
//! and `d0` when it encrypts 0. Classic (`m = 1`) blind rotation is a chain
//! of CMuxes; MATCHA's bundle formulation generalizes it (see
//! [`crate::bku`]).

use crate::scratch::BootstrapScratch;
use crate::tgsw::TgswSpectrum;
use crate::tlwe::TrlweCiphertext;
use matcha_fft::FftEngine;
use matcha_math::GadgetDecomposer;

/// `d0 + C ⊡ (d1 − d0)`.
///
/// # Examples
///
/// See the module tests; CMux requires full key setup so a doctest would
/// just duplicate them.
pub fn cmux<E: FftEngine>(
    engine: &E,
    control: &TgswSpectrum<E>,
    d0: &TrlweCiphertext,
    d1: &TrlweCiphertext,
    decomp: &GadgetDecomposer,
) -> TrlweCiphertext {
    let mut diff = d1.clone();
    diff.sub_assign(d0);
    let mut out = control.external_product(engine, &diff, decomp);
    out.add_assign(d0);
    out
}

/// `acc ← acc + C ⊡ (d1 − acc)` — the blind-rotation CMux step, evaluated
/// through the caller's scratch with zero allocations once warmed.
/// Bit-identical to [`cmux`] applied to `(acc, d1)`.
pub fn cmux_assign<E: FftEngine>(
    engine: &E,
    control: &TgswSpectrum<E>,
    acc: &mut TrlweCiphertext,
    d1: &TrlweCiphertext,
    decomp: &GadgetDecomposer,
    scratch: &mut BootstrapScratch<E>,
) {
    let diff = &mut scratch.diff;
    diff.copy_from(d1);
    diff.sub_assign(acc);
    control.external_product_assign(engine, diff, decomp, &mut scratch.ep);
    acc.add_assign(diff);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use crate::secret::RingSecretKey;
    use crate::tgsw::TgswCiphertext;
    use matcha_fft::F64Fft;
    use matcha_math::{Torus32, TorusPolynomial, TorusSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParameterSet, RingSecretKey, F64Fft, TorusSampler<StdRng>) {
        let p = ParameterSet {
            ring_degree: 64,
            ..ParameterSet::TEST_FAST
        };
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(29));
        let key = RingSecretKey::generate(p.ring_degree, &mut sampler);
        let engine = F64Fft::new(p.ring_degree);
        (p, key, engine, sampler)
    }

    fn constant_poly(v: f64, n: usize) -> TorusPolynomial {
        TorusPolynomial::constant(Torus32::from_f64(v), n)
    }

    #[test]
    fn cmux_selects_by_control_bit() {
        let (p, key, engine, mut sampler) = setup();
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let m0 = constant_poly(0.125, p.ring_degree);
        let m1 = constant_poly(-0.25, p.ring_degree);
        let d0 = TrlweCiphertext::encrypt(&m0, &key, p.ring_noise_stdev, &engine, &mut sampler);
        let d1 = TrlweCiphertext::encrypt(&m1, &key, p.ring_noise_stdev, &engine, &mut sampler);
        for (bit, expected) in [(0, &m0), (1, &m1)] {
            let control = TgswCiphertext::encrypt_constant(bit, &key, &p, &engine, &mut sampler)
                .to_spectrum(&engine);
            let out = cmux(&engine, &control, &d0, &d1, &decomp);
            assert!(
                out.phase(&key, &engine).max_distance(expected) < 1e-3,
                "bit={bit}"
            );
        }
    }

    #[test]
    fn cmux_chain_accumulates_selections() {
        // A two-level CMux tree: out = select(c1, select(c0, m00, m01), ...)
        let (p, key, engine, mut sampler) = setup();
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let leaves: Vec<TorusPolynomial> = (0..4)
            .map(|i| constant_poly(0.0625 * (i as f64 + 1.0), p.ring_degree))
            .collect();
        let enc: Vec<TrlweCiphertext> = leaves
            .iter()
            .map(|m| TrlweCiphertext::encrypt(m, &key, p.ring_noise_stdev, &engine, &mut sampler))
            .collect();
        for (sel, leaf) in leaves.iter().enumerate() {
            let b0 = (sel & 1) as i32;
            let b1 = ((sel >> 1) & 1) as i32;
            let c0 = TgswCiphertext::encrypt_constant(b0, &key, &p, &engine, &mut sampler)
                .to_spectrum(&engine);
            let c1 = TgswCiphertext::encrypt_constant(b1, &key, &p, &engine, &mut sampler)
                .to_spectrum(&engine);
            let lo = cmux(&engine, &c0, &enc[0], &enc[1], &decomp);
            let hi = cmux(&engine, &c0, &enc[2], &enc[3], &decomp);
            let out = cmux(&engine, &c1, &lo, &hi, &decomp);
            assert!(
                out.phase(&key, &engine).max_distance(leaf) < 5e-3,
                "sel={sel}"
            );
        }
    }
}
