//! Reusable workspaces for the zero-allocation bootstrap hot path.
//!
//! A bootstrap touches `~2ℓ·⌈n/m⌉` transforms, one bundle build per key
//! group and one key switch; the seed implementation allocated every
//! spectrum, digit vector and FFT buffer on each of them. These scratch
//! types own all of that memory instead: construct once (per worker
//! thread), warm up with one call, and every subsequent bootstrap performs
//! zero heap allocations — the software counterpart of MATCHA's statically
//! provisioned on-chip buffers.
//!
//! [`EpScratch`] covers a bare external product; [`BootstrapScratch`] adds
//! the blind-rotation accumulator, bundle buffers and key-switch buffers
//! needed by a full gate bootstrap. Both are created from
//! [`BootstrapKit::make_scratch`](crate::bootstrap::BootstrapKit::make_scratch)
//! or their `new` constructors.

use crate::params::ParameterSet;
use crate::tgsw::TgswSpectrum;
use crate::tlwe::TrlweCiphertext;
use crate::LweCiphertext;
use matcha_fft::FftEngine;
use matcha_math::TorusPolynomial;

/// Workspace for one in-place external product: the digit spectrum, the
/// two spectral accumulators and the engine scratch.
///
/// Since the fused decompose→twist path, digit polynomials are extracted
/// inside the forward transforms and never materialized, so the workspace
/// no longer carries `2ℓ` digit-polynomial buffers.
#[derive(Debug)]
pub struct EpScratch<E: FftEngine> {
    /// Engine-level FFT workspace.
    pub(crate) engine: E::Scratch,
    /// Spectrum of the digit level currently being accumulated.
    pub(crate) fd: E::Spectrum,
    /// Mask-row spectral accumulator.
    pub(crate) acc_a: E::Spectrum,
    /// Body-row spectral accumulator.
    pub(crate) acc_b: E::Spectrum,
}

impl<E: FftEngine> EpScratch<E> {
    /// Builds a workspace sized for `params` (ring degree).
    pub fn new(engine: &E, _params: &ParameterSet) -> Self {
        Self {
            engine: engine.make_scratch(),
            fd: engine.zero_spectrum(),
            acc_a: engine.zero_spectrum(),
            acc_b: engine.zero_spectrum(),
        }
    }
}

/// Workspace for a full gate bootstrap (blind rotation + sample extraction
/// + key switch), including the per-group bundle buffers.
#[derive(Debug)]
pub struct BootstrapScratch<E: FftEngine> {
    /// External-product workspace.
    pub(crate) ep: EpScratch<E>,
    /// Reusable bundle (initialized to the gadget TGSW's shape).
    pub(crate) bundle: TgswSpectrum<E>,
    /// Factor table `ε_k^e − 1`, recomputed per pattern.
    pub(crate) factors: E::MonomialFactors,
    /// Blind-rotation accumulator.
    pub(crate) acc: TrlweCiphertext,
    /// CMux difference buffer.
    pub(crate) diff: TrlweCiphertext,
    /// Test-vector buffer (set by the caller before blind rotation).
    pub(crate) testv: TorusPolynomial,
    /// Mod-switched exponents of the current key group.
    pub(crate) exponents: Vec<u32>,
    /// Sample-extraction output (dimension `N`).
    pub(crate) extracted: LweCiphertext,
    /// Second extraction buffer: [`ServerKey::mux_into`]
    /// (crate::gates::ServerKey::mux_into) holds both of its bootstrap
    /// outputs live at once.
    pub(crate) extracted2: LweCiphertext,
    /// Gate linear-part buffer (dimension `n`).
    pub(crate) lin: LweCiphertext,
}

impl<E: FftEngine> BootstrapScratch<E> {
    /// Builds a workspace for `params`, seeding the bundle buffer with a
    /// correctly-shaped TGSW (`bundle_seed`, typically the gadget `H` in
    /// spectral form).
    pub(crate) fn with_bundle(
        engine: &E,
        params: &ParameterSet,
        bundle_seed: TgswSpectrum<E>,
    ) -> Self {
        let n = params.ring_degree;
        Self {
            ep: EpScratch::new(engine, params),
            bundle: bundle_seed,
            factors: E::MonomialFactors::default(),
            acc: TrlweCiphertext::zero(n),
            diff: TrlweCiphertext::zero(n),
            testv: TorusPolynomial::zero(n),
            exponents: Vec::with_capacity(8),
            extracted: LweCiphertext::trivial(matcha_math::Torus32::ZERO, n),
            extracted2: LweCiphertext::trivial(matcha_math::Torus32::ZERO, n),
            lin: LweCiphertext::trivial(matcha_math::Torus32::ZERO, params.lwe_dimension),
        }
    }

    /// The test-vector buffer, to be filled before a raw
    /// [`blind_rotate_assign`](crate::bootstrap::BootstrapKit::blind_rotate_assign)
    /// call.
    pub fn test_vector_mut(&mut self) -> &mut TorusPolynomial {
        &mut self.testv
    }

    /// The blind-rotation accumulator holding the last rotation result.
    pub fn accumulator(&self) -> &TrlweCiphertext {
        &self.acc
    }

    /// The external-product workspace (for composing custom pipelines).
    pub fn ep_mut(&mut self) -> &mut EpScratch<E> {
        &mut self.ep
    }
}
