//! Gate bootstrapping (Algorithm 1 of the paper).
//!
//! The pipeline per gate: round the input LWE sample to `Z_{2N}`, blind-
//! rotate a test vector by the encrypted phase (one bundle build + external
//! product per key group), extract the constant coefficient, and key-switch
//! back to the gate-level key. Every TFHE Boolean gate is a cheap linear
//! combination followed by this procedure, which is why bootstrapping is
//! 99% of gate latency (paper Figure 1).

use crate::bku::UnrolledBootstrappingKey;
use crate::keyswitch::KeySwitchKey;
use crate::lwe::LweCiphertext;
use crate::params::ParameterSet;
use crate::profile::{self, Phase};
use crate::scratch::BootstrapScratch;
use crate::secret::ClientKey;
use crate::tlwe::TrlweCiphertext;
use matcha_fft::FftEngine;
use matcha_math::{
    mod_switch_from_torus, GadgetDecomposer, Torus32, TorusPolynomial, TorusSampler,
};
use rand::Rng;

/// Everything the (untrusted) evaluator needs to bootstrap: the unrolled
/// bootstrapping key, the key-switching key, and the gadget decomposer.
#[derive(Clone, Debug)]
pub struct BootstrapKit<E: FftEngine> {
    params: ParameterSet,
    bk: UnrolledBootstrappingKey<E>,
    ksk: KeySwitchKey,
    decomp: GadgetDecomposer,
}

impl<E: FftEngine> BootstrapKit<E> {
    /// Generates the evaluation keys from the client's secrets.
    ///
    /// `unroll` is the BKU factor `m` (paper §4.2): 1 reproduces classic
    /// TFHE; larger values trade `2^m − 1` stored keys per group for
    /// `⌈n/m⌉` instead of `n` external products per bootstrap.
    pub fn generate<R: Rng>(client: &ClientKey, engine: &E, unroll: usize, rng: &mut R) -> Self {
        let params = *client.params();
        let mut sampler = TorusSampler::new(rng);
        let bk = UnrolledBootstrappingKey::generate(
            client.lwe_key(),
            client.ring_key(),
            &params,
            engine,
            unroll,
            &mut sampler,
        );
        let ksk = KeySwitchKey::generate(
            &client.ring_key().extract_lwe_key(),
            client.lwe_key(),
            &params,
            &mut sampler,
        );
        let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
        Self {
            params,
            bk,
            ksk,
            decomp,
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &ParameterSet {
        &self.params
    }

    /// The BKU factor `m`.
    pub fn unroll(&self) -> usize {
        self.bk.unroll()
    }

    /// The unrolled bootstrapping key.
    pub fn bootstrapping_key(&self) -> &UnrolledBootstrappingKey<E> {
        &self.bk
    }

    /// The key-switching key.
    pub fn key_switch_key(&self) -> &KeySwitchKey {
        &self.ksk
    }

    /// Blind rotation: returns `TRLWE(X^{b̄ − ⟨ā, s⟩} · testv)`.
    ///
    /// One bundle construction + external product per key group
    /// (Figure 6a's two pipeline steps, executed sequentially in software).
    pub fn blind_rotate(
        &self,
        engine: &E,
        input: &LweCiphertext,
        testv: TorusPolynomial,
    ) -> TrlweCiphertext {
        let two_n = self.params.two_n();
        let b_bar = mod_switch_from_torus(input.body(), two_n);
        let mut acc = profile::timed(Phase::Other, || {
            TrlweCiphertext::trivial(testv).rotate(b_bar as i64)
        });
        let mask = input.mask();
        let mut index = 0;
        for group in self.bk.groups() {
            let exponents: Vec<u32> = mask[index..index + group.len()]
                .iter()
                .map(|&a| mod_switch_from_torus(a, two_n))
                .collect();
            index += group.len();
            let bundle = self.bk.build_bundle(engine, group, &exponents, two_n);
            acc = bundle.external_product(engine, &acc, &self.decomp);
        }
        acc
    }

    /// Bootstraps `input` to a fresh sample of message `±mu` under the
    /// *extracted* (dimension-`N`) key — Algorithm 1 without the final
    /// key switch. Output message is `+mu` when the input phase is in
    /// `(0, 1/2)` and `−mu` otherwise.
    pub fn bootstrap_to_extracted(
        &self,
        engine: &E,
        input: &LweCiphertext,
        mu: Torus32,
    ) -> LweCiphertext {
        // All-(−μ) test vector: rotating by a positive phase δ̄ ∈ [1, N]
        // wraps the top coefficient negacyclically into +μ at position 0.
        let testv = TorusPolynomial::from_coeffs(vec![-mu; self.params.ring_degree]);
        let acc = self.blind_rotate(engine, input, testv);
        profile::timed(Phase::Other, || acc.sample_extract())
    }

    /// Full gate bootstrap: noise-reset to `±mu` and key-switch back to the
    /// gate-level key.
    pub fn bootstrap(&self, engine: &E, input: &LweCiphertext, mu: Torus32) -> LweCiphertext {
        let extracted = self.bootstrap_to_extracted(engine, input, mu);
        self.ksk.switch(&extracted)
    }

    /// Builds a reusable workspace for the zero-allocation bootstrap path.
    /// One scratch per worker thread; the first bootstrap through it warms
    /// the buffers, every later one allocates nothing.
    pub fn make_scratch(&self, engine: &E) -> BootstrapScratch<E> {
        BootstrapScratch::with_bundle(engine, &self.params, self.bk.gadget_spectrum().clone())
    }

    /// Blind rotation through the scratch: reads the test vector from
    /// `scratch.test_vector_mut()` and leaves `TRLWE(X^{b̄ − ⟨ā, s⟩}·testv)`
    /// in `scratch.accumulator()`. Bit-identical to
    /// [`BootstrapKit::blind_rotate`]; zero allocations once warmed.
    pub fn blind_rotate_assign(
        &self,
        engine: &E,
        input: &LweCiphertext,
        scratch: &mut BootstrapScratch<E>,
    ) {
        let two_n = self.params.two_n();
        let b_bar = mod_switch_from_torus(input.body(), two_n);
        let BootstrapScratch {
            ep,
            bundle,
            factors,
            acc,
            testv,
            exponents,
            ..
        } = scratch;
        profile::timed(Phase::Other, || {
            acc.mask_mut().fill_zero();
            acc.body_mut().rotate_from(testv, b_bar as i64);
        });
        let mask = input.mask();
        let mut index = 0;
        for group in self.bk.groups() {
            exponents.clear();
            exponents.extend(
                mask[index..index + group.len()]
                    .iter()
                    .map(|&a| mod_switch_from_torus(a, two_n)),
            );
            index += group.len();
            self.bk
                .build_bundle_into(engine, group, exponents, two_n, bundle, factors);
            bundle.external_product_assign(engine, acc, &self.decomp, ep);
        }
    }

    /// [`BootstrapKit::bootstrap_to_extracted`] into a caller-owned output
    /// through the scratch — zero allocations once warmed.
    pub fn bootstrap_to_extracted_into(
        &self,
        engine: &E,
        input: &LweCiphertext,
        mu: Torus32,
        out: &mut LweCiphertext,
        scratch: &mut BootstrapScratch<E>,
    ) {
        // All-(−μ) test vector, as in `bootstrap_to_extracted`.
        scratch.testv.coeffs_mut().fill(-mu);
        self.blind_rotate_assign(engine, input, scratch);
        profile::timed(Phase::Other, || scratch.acc.sample_extract_into(out));
    }

    /// [`BootstrapKit::bootstrap`] into a caller-owned output through the
    /// scratch — zero allocations once warmed. Bit-identical to the
    /// allocating path.
    pub fn bootstrap_into(
        &self,
        engine: &E,
        input: &LweCiphertext,
        mu: Torus32,
        out: &mut LweCiphertext,
        scratch: &mut BootstrapScratch<E>,
    ) {
        // Split borrow: extract into `scratch.extracted`, then key-switch.
        let mut extracted = std::mem::take(&mut scratch.extracted);
        self.bootstrap_to_extracted_into(engine, input, mu, &mut extracted, scratch);
        self.ksk.switch_into(&extracted, out);
        scratch.extracted = extracted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_fft::{ApproxIntFft, F64Fft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const MU: f64 = 0.125;

    fn client(seed: u64) -> (ClientKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        (key, rng)
    }

    fn check_bootstrap<E: FftEngine>(engine: &E, unroll: usize, seed: u64) {
        let (client_key, mut rng) = client(seed);
        let kit = BootstrapKit::generate(&client_key, engine, unroll, &mut rng);
        for message in [true, false] {
            let c = client_key.encrypt_with(message, &mut rng);
            let out = kit.bootstrap(engine, &c, Torus32::from_f64(MU));
            assert_eq!(
                client_key.decrypt(&out),
                message,
                "unroll={unroll} message={message}"
            );
            // Bootstrapped noise must be far below the 1/16 margin.
            let noise = client_key.noise_of(&out, message).abs();
            assert!(noise < 0.03, "unroll={unroll}: noise {noise}");
        }
    }

    #[test]
    fn bootstrap_identity_m1() {
        check_bootstrap(&F64Fft::new(256), 1, 41);
    }

    #[test]
    fn bootstrap_identity_m2() {
        check_bootstrap(&F64Fft::new(256), 2, 42);
    }

    #[test]
    fn bootstrap_identity_m3() {
        check_bootstrap(&F64Fft::new(256), 3, 43);
    }

    #[test]
    fn bootstrap_identity_m4() {
        check_bootstrap(&F64Fft::new(256), 4, 44);
    }

    #[test]
    fn bootstrap_with_approximate_fft() {
        check_bootstrap(&ApproxIntFft::new(256, 45), 1, 45);
    }

    #[test]
    fn bootstrap_with_approximate_fft_unrolled() {
        check_bootstrap(&ApproxIntFft::new(256, 45), 3, 46);
    }

    #[test]
    fn unrolled_matches_classic_output_message() {
        // m = 1 and m = 3 must decrypt identically on the same ciphertext.
        let (client_key, mut rng) = client(47);
        let engine = F64Fft::new(256);
        let kit1 = BootstrapKit::generate(&client_key, &engine, 1, &mut rng);
        let kit3 = BootstrapKit::generate(&client_key, &engine, 3, &mut rng);
        for message in [true, false] {
            let c = client_key.encrypt_with(message, &mut rng);
            let o1 = kit1.bootstrap(&engine, &c, Torus32::from_f64(MU));
            let o3 = kit3.bootstrap(&engine, &c, Torus32::from_f64(MU));
            assert_eq!(client_key.decrypt(&o1), client_key.decrypt(&o3));
            assert_eq!(client_key.decrypt(&o1), message);
        }
    }

    #[test]
    fn bootstrap_resets_noise() {
        // Feed a deliberately noisy (but decryptable) sample; output noise
        // must be independent of input noise.
        let (client_key, mut rng) = client(48);
        let engine = F64Fft::new(256);
        let kit = BootstrapKit::generate(&client_key, &engine, 2, &mut rng);
        let mut c = client_key.encrypt_with(true, &mut rng);
        // Stack noise by summing encryptions of ±1/8 that cancel.
        for _ in 0..3 {
            let plus = client_key.encrypt_with(true, &mut rng);
            let minus = client_key.encrypt_with(false, &mut rng);
            c.add_assign(&plus);
            c.add_assign(&minus);
            let flip = client_key.encrypt_with(false, &mut rng);
            let unflip = client_key.encrypt_with(true, &mut rng);
            c.add_assign(&flip);
            c.sub_assign(&unflip);
            c.add_assign(&unflip);
            c.sub_assign(&flip);
        }
        let out = kit.bootstrap(&engine, &c, Torus32::from_f64(MU));
        assert!(client_key.decrypt(&out));
        assert!(client_key.noise_of(&out, true).abs() < 0.03);
    }
}
