//! Quickstart: encrypt two bits, evaluate a NAND homomorphically with the
//! approximate multiplication-less integer FFT, and decrypt.
//!
//! Run with: `cargo run --release --example quickstart`

use matcha::{ApproxIntFft, ClientKey, ParameterSet, ServerKey};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // The paper's 110-bit-security parameters (§5): N = 1024, k = 1,
    // Bg = 1024, ℓ = 3, n = 500.
    let params = ParameterSet::MATCHA;
    println!(
        "generating client keys (n = {}, N = {})...",
        params.lwe_dimension, params.ring_degree
    );
    let client = ClientKey::generate(params, &mut rng);

    // MATCHA's engine: integer FFT with 38-bit dyadic-value-quantized
    // twiddles (the paper's minimum for failure-free operation at m = 2),
    // plus 2× bootstrapping key unrolling.
    let engine = ApproxIntFft::new(params.ring_degree, 38);
    println!("generating server keys (approx. integer FFT, 38-bit twiddles, m = 2)...");
    let t0 = Instant::now();
    let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);
    println!("  server keygen: {:?}", t0.elapsed());

    for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
        let ca = client.encrypt_with(a, &mut rng);
        let cb = client.encrypt_with(b, &mut rng);
        let t0 = Instant::now();
        let out = server.nand(&ca, &cb);
        let dt = t0.elapsed();
        let result = client.decrypt(&out);
        println!("NAND({a}, {b}) = {result}   [{dt:?}]");
        assert_eq!(
            result,
            !(a && b),
            "homomorphic NAND disagrees with plaintext"
        );
    }
    println!("all NAND outputs decrypted correctly");
}
