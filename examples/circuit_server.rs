//! Serving encrypted circuits: multiple clients submit whole gate
//! netlists to a [`CircuitServer`], which keeps every submitted circuit
//! in flight at once and fills each pool dispatch with ready gates from
//! all of them — the software analogue of MATCHA's scheduler keeping
//! eight resident pipelines busy (Figure 10), with the analytical
//! `accel::schedule` model cross-checked against measured wall-clock.
//! Since PR 6 the server also practices admission control: malformed
//! submissions and unmeetable deadlines come back as structured
//! `Rejected` outcomes instead of panics, and the scheduler stats count
//! every way a ticket can resolve. And since the word-level library
//! lowered to netlists, the server runs whole encrypted-CPU cycles: each
//! `processor_cycle` circuit takes the register file plus the encrypted
//! opcode and returns the next register file, so a straight-line program
//! is just consecutive submissions — the paper's §1 TFHE RISC-V workload
//! in miniature.
//!
//! Run with: `cargo run --release --example circuit_server [-- --fast]`
//! (`--fast` uses the small test parameters instead of the paper's.)

use matcha::accel::schedule;
use matcha::circuits::netlist::{self, CycleInstruction};
use matcha::circuits::processor::EncryptedOpcode;
use matcha::circuits::{alu, word};
use matcha::tfhe::{CircuitServer, LweCiphertext, PendingCircuit, RejectReason};
use matcha::{ClientKey, F64Fft, ParameterSet, ServerKey};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let params = if fast {
        ParameterSet::TEST_FAST
    } else {
        ParameterSet::MATCHA
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    println!("generating keys (N = {}, m = 2)...", params.ring_degree);
    let client = ClientKey::generate(params, &mut rng);
    let engine = F64Fft::new(params.ring_degree);
    let key = Arc::new(ServerKey::with_unrolling(&client, engine, 2, &mut rng));

    println!("starting circuit server with {threads} pool worker(s)");
    let server = CircuitServer::start(Arc::clone(&key), threads);

    // Client 1 submits 8-bit additions; client 2 submits 4-way selections.
    // Both go through the same scheduler and pool concurrently.
    let adder = netlist::ripple_adder(8);
    let tree = netlist::mux_tree(2, 4);
    let sums: Vec<(u64, u64, PendingCircuit)> = [(25u64, 17u64), (200, 100), (255, 1)]
        .into_iter()
        .map(|(x, y)| {
            let a = word::encrypt(&client, x, 8, &mut rng);
            let b = word::encrypt(&client, y, 8, &mut rng);
            let inputs = a.into_iter().chain(b).collect();
            (x, y, server.client().submit(adder.clone(), inputs))
        })
        .collect();
    let selects: Vec<(u64, PendingCircuit)> = (0..4u64)
        .map(|idx| {
            let index = word::encrypt(&client, idx, 2, &mut rng);
            let words = (0..4u64).flat_map(|v| word::encrypt(&client, 10 + v, 4, &mut rng));
            let inputs = index.into_iter().chain(words).collect();
            (idx, server.client().submit(tree.clone(), inputs))
        })
        .collect();

    let t0 = Instant::now();
    for (x, y, pending) in sums {
        let run = pending.wait().completed().expect("server is live");
        let sum = word::decrypt(&client, &run.outputs[..8]);
        println!(
            "  adder: {x:3} + {y:3} = {sum:3}  [{} bootstraps, {} waves, {:.1?}]",
            run.bootstraps,
            run.waves,
            std::time::Duration::from_secs_f64(run.elapsed_s),
        );
        assert_eq!(sum, (x + y) & 0xFF);
    }
    for (idx, pending) in selects {
        let run = pending.wait().completed().expect("server is live");
        let picked = word::decrypt(&client, &run.outputs);
        println!(
            "  mux tree: word[{idx}] = {picked}  [{} bootstraps, {} waves, {:.1?}]",
            run.bootstraps,
            run.waves,
            std::time::Duration::from_secs_f64(run.elapsed_s),
        );
        assert_eq!(picked, 10 + idx);
    }
    // The encrypted CPU: consecutive processor cycles as submitted
    // circuits. The server never learns the operations — the ALU opcodes
    // and the CMov flag are ciphertext inputs like everything else; only
    // the register routing (which registers are read/written) is public.
    println!("running an encrypted 3-instruction program on the server:");
    let width = 4;
    let (v0, v1) = (9u64, 5u64);
    let add_op = EncryptedOpcode::encrypt(&client, alu::AluOp::Add, &mut rng);
    let xor_op = EncryptedOpcode::encrypt(&client, alu::AluOp::Xor, &mut rng);
    let flag = client.encrypt_with(true, &mut rng);
    let mut regs: Vec<LweCiphertext> = [v0, v1, 0]
        .iter()
        .flat_map(|&v| word::encrypt(&client, v, width, &mut rng))
        .collect();
    let program = [
        (
            "r2 <- r0 ADD r1",
            CycleInstruction::Alu {
                dst: 2,
                src1: 0,
                src2: 1,
            },
            add_op.bits().to_vec(),
        ),
        (
            "r0 <- flag ? r2 : r0",
            CycleInstruction::CMov {
                dst: 0,
                src_true: 2,
                src_false: 0,
            },
            vec![flag],
        ),
        (
            "r1 <- r2 XOR r0",
            CycleInstruction::Alu {
                dst: 1,
                src1: 2,
                src2: 0,
            },
            xor_op.bits().to_vec(),
        ),
    ];
    let cpu_client = server.client();
    for (asm, instr, control) in program {
        let net = netlist::processor_cycle(3, width, instr);
        let inputs: Vec<LweCiphertext> = regs.iter().cloned().chain(control).collect();
        let run = cpu_client
            .submit(net, inputs)
            .wait()
            .completed()
            .expect("server is live");
        regs = run.outputs;
        println!(
            "  cycle: {asm:22}  [{} bootstraps, {} waves, {:.1?}]",
            run.bootstraps,
            run.waves,
            std::time::Duration::from_secs_f64(run.elapsed_s),
        );
    }
    let sum = (v0 + v1) & 0xF;
    let r: Vec<u64> = (0..3)
        .map(|i| word::decrypt(&client, &regs[i * width..(i + 1) * width]))
        .collect();
    println!("  final registers: r0={} r1={} r2={}", r[0], r[1], r[2]);
    assert_eq!(
        r,
        vec![sum, 0, sum],
        "(r0 takes the CMov'd sum, r1 = sum^sum)"
    );
    let wall = t0.elapsed();

    // Cross-check the analytical scheduler against one measured circuit.
    let one = {
        let a = word::encrypt(&client, 42, 8, &mut rng);
        let b = word::encrypt(&client, 23, 8, &mut rng);
        let inputs = a.into_iter().chain(b).collect();
        server
            .client()
            .submit(adder.clone(), inputs)
            .wait()
            .completed()
            .expect("server is live")
    };
    // The model's gate latency comes from this measurement, so the honest
    // cross-checks are structural (critical path vs. measured waves) and
    // extrapolative (what more pipelines would buy).
    let skeleton = schedule::Netlist::from_deps(&adder.schedule_skeleton());
    let per_gate_s = one.elapsed_s / one.bootstraps as f64;
    let at8 = schedule::schedule(&skeleton, 8, per_gate_s);
    println!(
        "adder8 measured: {:.0} ms over {} waves on {threads} pipeline(s); \
         model critical path {} units; at 8 pipelines the model predicts \
         {:.0} ms ({:.0}% utilization)",
        one.elapsed_s * 1e3,
        one.waves,
        at8.critical_path,
        at8.makespan_s * 1e3,
        at8.utilization * 100.0,
    );
    // Admission control in action: a malformed submission and an
    // already-expired deadline both resolve as structured rejections
    // instead of panicking the client or hanging the ticket.
    let handle = server.client();
    let bad = handle.submit(adder.clone(), vec![]).wait();
    assert_eq!(bad.reject_reason(), Some(RejectReason::InvalidInput));
    println!(
        "  empty input list  -> Rejected({:?})",
        RejectReason::InvalidInput
    );
    let late = {
        let a = word::encrypt(&client, 1, 8, &mut rng);
        let b = word::encrypt(&client, 2, 8, &mut rng);
        handle
            .submit_with_deadline(
                adder.clone(),
                a.into_iter().chain(b).collect(),
                Duration::ZERO,
            )
            .wait()
    };
    assert_eq!(late.reject_reason(), Some(RejectReason::DeadlineUnmeetable));
    println!(
        "  zero deadline     -> Rejected({:?})",
        RejectReason::DeadlineUnmeetable
    );

    let stats = server.stats();
    println!(
        "scheduler: {} circuits completed, {} rejected, {} expired, \
         {} cancelled, {} worker restarts over {} interleaved dispatches, \
         up to {} in flight at once, {} tasks over {} offered wave-slots \
         ({:.0}% structural utilization)",
        stats.completed,
        stats.rejected,
        stats.expired,
        stats.cancelled,
        stats.restarts,
        stats.dispatches,
        stats.max_in_flight,
        stats.tasks,
        stats.slots,
        stats.utilization() * 100.0,
    );
    for (id, tally) in &stats.per_client {
        println!(
            "  client {id}: {} completed, {} rejected",
            tally.completed, tally.rejected
        );
    }
    println!("all circuits served and verified in {wall:.1?}");
    server.shutdown();
}
