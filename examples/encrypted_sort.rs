//! Encrypted sorting: a 4-element compare-and-swap network over encrypted
//! 3-bit values. The evaluator sorts data it cannot read — every compare
//! and every swap is oblivious.
//!
//! Run with: `cargo run --release --example encrypted_sort`
//! (uses fast test parameters; pass `--paper` for the full 110-bit set).

use matcha::circuits::{comparator, mux, word};
use matcha::{ApproxIntFft, ClientKey, FftEngine, ParameterSet, ServerKey};
use matcha_circuits::EncryptedWord;
use rand::SeedableRng;
use std::time::Instant;

/// Compare-and-swap: returns (min, max) of two encrypted words.
fn compare_swap<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> (EncryptedWord, EncryptedWord) {
    let a_le_b = comparator::le(server, a, b);
    let min = mux::select_word(server, &a_le_b, a, b);
    let max = mux::select_word(server, &a_le_b, b, a);
    (min, max)
}

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let params = if paper {
        ParameterSet::MATCHA
    } else {
        ParameterSet::TEST_FAST
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);

    println!("generating keys (N = {})...", params.ring_degree);
    let client = ClientKey::generate(params, &mut rng);
    let engine = ApproxIntFft::new(params.ring_degree, 40);
    let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);

    let values = [6u64, 1, 7, 3];
    let width = 3;
    let mut words: Vec<EncryptedWord> = values
        .iter()
        .map(|&v| word::encrypt(&client, v, width, &mut rng))
        .collect();

    // A 4-input sorting network: 5 compare-and-swap stages.
    let network = [(0usize, 1usize), (2, 3), (0, 2), (1, 3), (1, 2)];
    let t0 = Instant::now();
    for &(i, j) in &network {
        let (min, max) = compare_swap(&server, &words[i], &words[j]);
        words[i] = min;
        words[j] = max;
    }
    let dt = t0.elapsed();

    let sorted: Vec<u64> = words.iter().map(|w| word::decrypt(&client, w)).collect();
    println!("input : {values:?}");
    println!("sorted: {sorted:?}   [{dt:?}]");
    let mut expected = values;
    expected.sort_unstable();
    assert_eq!(sorted, expected, "homomorphic sort disagrees");
    println!("encrypted sorting network produced the correct order");
}
