//! Prints the full accelerator evaluation: Table 2 (power/area) and the
//! Figure 9/10/11 series (latency, throughput, throughput/Watt across
//! CPU/GPU/FPGA/ASIC/MATCHA for m = 1..4), plus the pipeline simulator's
//! bottleneck analysis.
//!
//! Run with: `cargo run --release --example accelerator_report`

use matcha::accel::{area_power, pipeline, platforms, report};
use matcha::{MatchaConfig, WorkloadParams};

fn main() {
    let cfg = MatchaConfig::paper();
    let workload = WorkloadParams::MATCHA;

    println!("{}", report::table2(&area_power::design_budget(&cfg)));

    let plats = platforms::evaluation_platforms();
    println!("{}", report::figure9(&plats));
    println!("{}", report::figure10(&plats));
    println!("{}", report::figure11(&plats));

    println!("# Pipeline bottleneck analysis (MATCHA, Figure 6 simulation)");
    println!(
        "{:<4} {:>6} {:>12} {:>12} {:>14} {:>10}",
        "m", "steps", "latency(ms)", "gates/s", "BK stream(MB)", "bound"
    );
    for m in 1..=4 {
        let r = pipeline::simulate_gate(&cfg, &workload, m);
        println!(
            "{:<4} {:>6} {:>12.4} {:>12.0} {:>14.1} {:>10?}",
            m,
            r.steps,
            r.latency_s * 1e3,
            r.throughput,
            r.hbm_bytes / 1e6,
            r.bottleneck
        );
    }
    println!(
        "\nbest unroll factor: m = {}",
        pipeline::best_unroll(&cfg, &workload, 4)
    );
    let best = pipeline::simulate_gate(&cfg, &workload, 3);
    println!(
        "energy per gate at m = 3: {:.3} mJ",
        area_power::energy_per_gate_j(&cfg, best.latency_s) * 1e3
    );
    println!("\n# Per-component energy per gate (m = 3, all pipelines busy)");
    for (name, joules) in area_power::energy_breakdown_j(&cfg, best.throughput) {
        println!("{name:<22} {:>8.4} mJ", joules * 1e3);
    }
}
