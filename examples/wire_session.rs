//! Wire sessions with packed transport: the client/evaluator split of
//! the paper over an actual byte stream. A `SessionServer` drives a
//! `CircuitServer` behind an in-memory duplex pipe (stand-in for a
//! socket); the client handshakes, packs its input bits into TRLWE
//! transport samples — 2 torus words per bit instead of `n + 1` — ships
//! an 8-bit adder netlist, and decrypts the result. Along the way the
//! example counts actual bytes on the wire for both upload encodings.
//!
//! Run with: `cargo run --release --example wire_session [-- --fast]`
//! (`--fast` uses the small test parameters instead of the paper's.)

use matcha::circuits::netlist;
use matcha::tfhe::session::{duplex, SessionClient, SessionOutcome, SessionServer};
use matcha::tfhe::{packing, CircuitServer, Codec, LweCiphertext};
use matcha::{ClientKey, F64Fft, ParameterSet, ServerKey};
use rand::SeedableRng;
use std::sync::Arc;

fn encode_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

fn decode_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let params = if fast {
        ParameterSet::TEST_FAST
    } else {
        ParameterSet::MATCHA
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);

    println!("generating keys (n = {})...", params.lwe_dimension);
    let client_key = ClientKey::generate(params, &mut rng);
    let engine = F64Fft::new(params.ring_degree);
    let key = Arc::new(ServerKey::new(
        &client_key,
        F64Fft::new(params.ring_degree),
        &mut rng,
    ));
    let server = CircuitServer::start(key, 2);

    // The "network": an in-memory duplex pipe, served on its own thread.
    let (near, far) = duplex();
    let session = SessionServer::new(server.client(), *server.params());
    let serving = std::thread::spawn(move || session.serve(far));

    let mut wire = SessionClient::connect(near).expect("handshake");
    println!(
        "connected: server speaks n = {}, N = {}",
        wire.params().lwe_dimension,
        wire.params().ring_degree
    );

    // 42 + 27 through an 8-bit ripple-carry adder, inputs packed.
    let (a, b) = (42u64, 27u64);
    let net = netlist::ripple_adder(8);
    let mut bits = encode_bits(a, 8);
    bits.extend(encode_bits(b, 8));

    // What the two uploads would cost on the wire, measured for real.
    let packed_bytes: usize = bits
        .chunks(params.ring_degree)
        .map(|chunk| {
            packing::pack_bits(&client_key, chunk, &engine, &mut rng)
                .to_bytes()
                .len()
        })
        .sum();
    let lwe_bytes: usize = bits
        .iter()
        .map(|&bit| client_key.encrypt_with(bit, &mut rng).to_bytes().len())
        .sum();
    println!(
        "upload for {} input bits: per-LWE {} bytes ({:.1} B/bit), packed {} bytes ({:.1} B/bit), ratio {:.1}x",
        bits.len(),
        lwe_bytes,
        lwe_bytes as f64 / bits.len() as f64,
        packed_bytes,
        packed_bytes as f64 / bits.len() as f64,
        lwe_bytes as f64 / packed_bytes as f64,
    );
    if !fast {
        // At the paper's parameters a full packed sample carries N = 1024
        // bits at 2 words each vs (n + 1) = 501 words per LWE bit: ~251x.
        println!(
            "(a full {}-bit packed payload amortizes to ~251x)",
            params.ring_degree
        );
    }

    let ticket = wire
        .submit_bits(&client_key, &net, &bits, &engine, &mut rng)
        .expect("submit");
    println!("submitted adder as ticket {ticket}");

    let (_, outcome) = wire.wait().expect("outcome");
    let run = match outcome {
        SessionOutcome::Completed(run) => run,
        other => panic!("adder did not complete: {other:?}"),
    };
    let sum_bits: Vec<bool> = run
        .outputs
        .iter()
        .map(|c: &LweCiphertext| client_key.decrypt(c))
        .collect();
    // The adder emits 8 sum bits plus a carry.
    let sum = decode_bits(&sum_bits[..8]);
    println!(
        "{a} + {b} = {sum} (carry {}), {} bootstraps in {} waves, {:.2}s server-side",
        u64::from(sum_bits[8]),
        run.bootstraps,
        run.waves,
        run.elapsed_s
    );
    assert_eq!(sum, (a + b) & 0xFF);

    drop(wire); // close the session
    let served = serving
        .join()
        .expect("serving thread")
        .expect("clean close");
    println!("session closed after {served} circuit(s)");
    server.shutdown();
}
