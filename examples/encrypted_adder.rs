//! An 8-bit encrypted adder: the classic TFHE workload the paper's
//! throughput numbers (Figure 10) are ultimately about — every full adder
//! costs five bootstrapped gates.
//!
//! Run with: `cargo run --release --example encrypted_adder [-- --fast]`
//! (`--fast` uses the small test parameters instead of the paper's.)

use matcha::circuits::{adder, word};
use matcha::{ClientKey, F64Fft, ParameterSet, ServerKey};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let params = if fast {
        ParameterSet::TEST_FAST
    } else {
        ParameterSet::MATCHA
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    println!("generating keys (N = {}, m = 2)...", params.ring_degree);
    let client = ClientKey::generate(params, &mut rng);
    let engine = F64Fft::new(params.ring_degree);
    let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);

    let width = 8;
    for (x, y) in [(25u64, 17u64), (200, 100), (255, 1)] {
        let a = word::encrypt(&client, x, width, &mut rng);
        let b = word::encrypt(&client, y, width, &mut rng);

        let t0 = Instant::now();
        let result = adder::add(&server, &a, &b);
        let dt = t0.elapsed();

        let sum = word::decrypt(&client, &result.sum);
        let carry = client.decrypt(&result.carry);
        let expected = (x + y) & word::max_value(width);
        println!(
            "{x:3} + {y:3} = {sum:3} (carry {carry})   [{} gates in {dt:?}, {:?}/gate]",
            5 * width,
            dt / (5 * width) as u32,
        );
        assert_eq!(sum, expected);
        assert_eq!(carry, x + y > word::max_value(width));
    }
    println!("all encrypted additions correct");
}
