//! Programmable bootstrapping: evaluate an arbitrary function on an
//! encrypted 2-bit message with a single blind rotation — the mechanism
//! behind encrypted neural-network activations (the workload class the
//! paper's introduction cites alongside general-purpose TFHE computing).
//!
//! Run with: `cargo run --release --example encrypted_lut`
//! (fast test parameters; pass `--paper` for the 110-bit set).

use matcha::tfhe::{encode::BucketEncoding, BootstrapKit};
use matcha::{ApproxIntFft, ClientKey, ParameterSet};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let params = if paper {
        ParameterSet::MATCHA
    } else {
        ParameterSet::TEST_FAST
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);

    println!(
        "generating keys (N = {}, approx integer FFT, m = 2)...",
        params.ring_degree
    );
    let client = ClientKey::generate(params, &mut rng);
    let engine = ApproxIntFft::new(params.ring_degree, 40);
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);

    // A 2-bit message space and the "ReLU-like" function max(x - 1, 0).
    let enc = BucketEncoding::new(2);
    let relu = enc.lut(params.ring_degree, |x| x.saturating_sub(1));

    for msg in 0..4u32 {
        let c = enc.encrypt(&client, msg, &mut rng);
        let t0 = Instant::now();
        let out = kit.bootstrap_with_lut(&engine, &c, &relu);
        let dt = t0.elapsed();
        let got = enc.decrypt(&client, &out);
        println!("relu1({msg}) = {got}   [{dt:?}]");
        assert_eq!(got, msg.saturating_sub(1));
    }

    // Chain: f(f(x)) — the output encoding feeds straight back in, the
    // unlimited-depth property of Table 1.
    let c = enc.encrypt(&client, 3, &mut rng);
    let once = kit.bootstrap_with_lut(&engine, &c, &relu);
    let twice = kit.bootstrap_with_lut(&engine, &once, &relu);
    assert_eq!(enc.decrypt(&client, &twice), 1);
    println!("chained LUT evaluations decrypt correctly (3 → 2 → 1)");
}
