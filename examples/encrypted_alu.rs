//! An encrypted 4-bit ALU with an encrypted opcode — a miniature of the
//! TFHE-based processors that motivate the paper (§1: a TFHE RISC-V CPU
//! runs at 1.25 Hz, hence the need for gate acceleration).
//!
//! The evaluator learns neither the operands nor which operation ran.
//!
//! Run with: `cargo run --release --example encrypted_alu`
//! (uses the fast test parameters; pass `--paper` for the full set).

use matcha::circuits::{alu, alu::AluOp, word};
use matcha::{ApproxIntFft, ClientKey, ParameterSet, ServerKey};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let params = if paper {
        ParameterSet::MATCHA
    } else {
        ParameterSet::TEST_FAST
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    println!(
        "generating keys (N = {}, approx integer FFT, m = 3)...",
        params.ring_degree
    );
    let client = ClientKey::generate(params, &mut rng);
    let engine = ApproxIntFft::new(params.ring_degree, 40);
    let server = ServerKey::with_unrolling(&client, engine, 3, &mut rng);

    let width = 4;
    let (x, y) = (0b1011u64, 0b0110u64);
    let a = word::encrypt(&client, x, width, &mut rng);
    let b = word::encrypt(&client, y, width, &mut rng);

    for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Xor] {
        let bits = op.opcode_bits();
        let opcode = vec![
            client.encrypt_with(bits[0], &mut rng),
            client.encrypt_with(bits[1], &mut rng),
        ];
        let t0 = Instant::now();
        let out = alu::execute(&server, &opcode, &a, &b);
        let dt = t0.elapsed();
        let got = word::decrypt(&client, &out);
        let expected = op.eval(x, y, width);
        println!("{op:?}({x:04b}, {y:04b}) = {got:04b}   [{dt:?}]");
        assert_eq!(got, expected, "{op:?}");
    }
    println!("encrypted ALU matches the plaintext oracle for every opcode");
}
