//! Sweeps the twiddle-factor quantization width of the approximate
//! multiplication-less integer FFT and reports the polynomial-
//! multiplication error in dB (the paper's Figure 8), against the
//! double-precision reference line.
//!
//! Run with: `cargo run --release --example fft_error_sweep`

use matcha::fft::error::{fft_roundtrip_error_db, poly_mul_error_db};
use matcha::{ApproxIntFft, F64Fft};

fn main() {
    let n = 1024; // the paper's ring degree
    let trials = 4;
    let seed = 2022;

    let double = poly_mul_error_db(&F64Fft::new(n), n, trials, seed);
    // Our double-precision pipeline rounds to the bit-exact product at these
    // sizes, so its measured error can fall below the half-ulp floor of the
    // 32-bit torus (≈ -193 dB).
    let double = if double.is_finite() { double } else { -193.0 };
    println!("# Figure 8: error of approx FFT & IFFT vs twiddle factor bits (N = {n})");
    println!(
        "{:<14} {:>12} {:>14}",
        "twiddle bits", "error (dB)", "roundtrip (dB)"
    );
    for bits in [10u32, 16, 22, 28, 34, 38, 44, 50, 56, 62] {
        let engine = ApproxIntFft::new(n, bits);
        let db = poly_mul_error_db(&engine, n, trials, seed);
        let rt = fft_roundtrip_error_db(&engine, n, trials, seed);
        // Exact round trips fall below the half-ulp measurement floor.
        let rt = if rt.is_finite() { rt } else { -193.0 };
        println!("{bits:<14} {db:>12.1} {rt:>14.1}");
    }
    println!("{:<14} {double:>12.1} {:>14}", "double (f64)", "-");
    println!("\npaper anchors: 64-bit DVQTF ≈ -141 dB, double ≈ -150 dB;");
    println!("38-bit DVQTFs already produce no decryption failures at m = 2 (§4.3).");
}
